"""ModelNet40-like synthetic shape-classification dataset.

The real ModelNet40 [66] contains 40 CAD object categories sampled to
1024 points per cloud.  This stand-in builds its categories from
parametric shape families (sphere, ellipsoid, torus, cylinder, cone,
box, capsule, helix), extended past 8 classes by binning a family's
shape parameter (e.g. "thin torus" vs "fat torus"), so any class count
up to 40 remains geometrically distinguishable — which is all the
accuracy experiments need.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.datasets.base import SyntheticDataset
from repro.geometry.points import PointCloud
from repro.geometry import shapes
from repro.geometry.transforms import normalize_unit_sphere

_FamilySampler = Callable[[int, np.random.Generator, float], np.ndarray]


def _sphere(n, rng, p):
    return shapes.sample_ellipsoid(
        n, rng, (1.0, 1.0 - 0.1 * p, 1.0), density_bias=0.4
    )


def _ellipsoid(n, rng, p):
    return shapes.sample_ellipsoid(
        n, rng, (1.0, 0.65 - 0.1 * p, 0.4), density_bias=0.4
    )


def _torus(n, rng, p):
    return shapes.sample_torus(
        n, rng, 1.0, 0.2 + 0.12 * p, density_bias=0.4
    )


def _cylinder(n, rng, p):
    return shapes.sample_cylinder(
        n, rng, 0.35 + 0.1 * p, 2.0, density_bias=0.4
    )


def _cone(n, rng, p):
    return shapes.sample_cone(n, rng, 0.6 + 0.15 * p, 1.6)


def _box(n, rng, p):
    return shapes.sample_box(n, rng, (1.0, 1.0 - 0.2 * p, 0.6))


def _capsule(n, rng, p):
    return shapes.sample_capsule(n, rng, 0.25 + 0.08 * p, 1.2)


def _helix(n, rng, p):
    return shapes.sample_helix(n, rng, 0.6, 0.2 + 0.08 * p, 3.0)


_FAMILIES: List[_FamilySampler] = [
    _sphere,
    _ellipsoid,
    _torus,
    _cylinder,
    _cone,
    _box,
    _capsule,
    _helix,
]

MAX_CLASSES = len(_FAMILIES) * 5


def class_recipe(class_id: int) -> Tuple[_FamilySampler, float]:
    """Map a class id to a (family, shape-parameter) pair."""
    if not 0 <= class_id < MAX_CLASSES:
        raise ValueError(f"class_id must be in [0, {MAX_CLASSES})")
    family = _FAMILIES[class_id % len(_FAMILIES)]
    parameter = float(class_id // len(_FAMILIES))
    return family, parameter


class ModelNetLike(SyntheticDataset):
    """Shape classification, 1024 points/cloud by default (Table 1 W3).

    Clouds are label-balanced: cloud ``i`` belongs to class
    ``i % num_classes``.  Every cloud gets a random rotation about z
    and mild jitter, so the classifier cannot shortcut on orientation.
    """

    def __init__(
        self,
        num_clouds: int = 40,
        points_per_cloud: int = 1024,
        num_classes: int = 8,
        seed: int = 0,
        jitter_sigma: float = 0.01,
    ) -> None:
        super().__init__(num_clouds, points_per_cloud, seed)
        if not 2 <= num_classes <= MAX_CLASSES:
            raise ValueError(
                f"num_classes must be in [2, {MAX_CLASSES}]"
            )
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        self.num_classes = num_classes
        self.jitter_sigma = jitter_sigma

    def _generate(self, index: int, rng: np.random.Generator) -> PointCloud:
        label = index % self.num_classes
        family, parameter = class_recipe(label)
        xyz = family(self.points_per_cloud, rng, parameter)
        if self.jitter_sigma > 0:
            xyz = xyz + rng.normal(0, self.jitter_sigma, xyz.shape)
        angle = rng.uniform(0, 2 * np.pi)
        c, s = np.cos(angle), np.sin(angle)
        rot = np.array([[c, -s, 0], [s, c, 0], [0, 0, 1.0]])
        cloud = PointCloud(
            xyz @ rot.T,
            labels=np.full(self.points_per_cloud, label, dtype=np.int64),
        )
        return normalize_unit_sphere(cloud)
