"""The :class:`PointCloud` container used throughout the library.

A point cloud is an unordered set of 3-D points, optionally carrying
per-point features (RGB, normals, ...) and per-point labels (semantic or
part labels).  The container is intentionally a thin, validated wrapper
around NumPy arrays: every algorithm in the library operates on the raw
arrays, and the container only guarantees that their shapes stay
consistent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.bbox import BoundingBox


class PointCloud:
    """An immutable-by-convention set of ``N`` points with attributes.

    Attributes:
        xyz: ``(N, 3)`` float64 coordinates.
        features: optional ``(N, C)`` float per-point features.
        labels: optional ``(N,)`` integer per-point labels.
    """

    __slots__ = ("xyz", "features", "labels")

    def __init__(
        self,
        xyz: np.ndarray,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> None:
        xyz = np.asarray(xyz, dtype=np.float64)
        if xyz.ndim != 2 or xyz.shape[1] != 3:
            raise ValueError(f"xyz must be (N, 3), got {xyz.shape}")
        if not np.all(np.isfinite(xyz)):
            raise ValueError("xyz contains non-finite coordinates")
        n = xyz.shape[0]
        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.ndim != 2 or features.shape[0] != n:
                raise ValueError(
                    f"features must be (N, C) with N={n}, got {features.shape}"
                )
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape != (n,):
                raise ValueError(
                    f"labels must be (N,) with N={n}, got {labels.shape}"
                )
            labels = labels.astype(np.int64)
        self.xyz = xyz
        self.features = features
        self.labels = labels

    def __len__(self) -> int:
        return self.xyz.shape[0]

    def __repr__(self) -> str:
        parts = [f"PointCloud(n={len(self)}"]
        if self.features is not None:
            parts.append(f", features={self.features.shape[1]}d")
        if self.labels is not None:
            parts.append(", labelled")
        return "".join(parts) + ")"

    @property
    def num_feature_channels(self) -> int:
        return 0 if self.features is None else self.features.shape[1]

    def bounding_box(self) -> BoundingBox:
        return BoundingBox.of_points(self.xyz)

    def select(self, indices: np.ndarray) -> "PointCloud":
        """Return a new cloud with the points at ``indices`` (in order)."""
        indices = np.asarray(indices)
        return PointCloud(
            self.xyz[indices],
            None if self.features is None else self.features[indices],
            None if self.labels is None else self.labels[indices],
        )

    def permuted(self, permutation: np.ndarray) -> "PointCloud":
        """Reorder the cloud by a full permutation of its indices."""
        permutation = np.asarray(permutation)
        if sorted(permutation.tolist()) != list(range(len(self))):
            raise ValueError("not a permutation of the point indices")
        return self.select(permutation)

    def with_features(self, features: np.ndarray) -> "PointCloud":
        return PointCloud(self.xyz, features, self.labels)

    def with_labels(self, labels: np.ndarray) -> "PointCloud":
        return PointCloud(self.xyz, self.features, labels)

    def concatenated_with(self, other: "PointCloud") -> "PointCloud":
        """Concatenate two clouds; attributes must match in presence."""
        if (self.features is None) != (other.features is None):
            raise ValueError("cannot concatenate: feature presence differs")
        if (self.labels is None) != (other.labels is None):
            raise ValueError("cannot concatenate: label presence differs")
        features = None
        if self.features is not None:
            if self.features.shape[1] != other.features.shape[1]:
                raise ValueError("feature channel counts differ")
            features = np.concatenate([self.features, other.features])
        labels = None
        if self.labels is not None:
            labels = np.concatenate([self.labels, other.labels])
        return PointCloud(
            np.concatenate([self.xyz, other.xyz]), features, labels
        )

    def copy(self) -> "PointCloud":
        return PointCloud(
            self.xyz.copy(),
            None if self.features is None else self.features.copy(),
            None if self.labels is None else self.labels.copy(),
        )
