"""Point-cloud transforms: normalization and training-time augmentation.

These mirror the standard preprocessing used by PointNet++/DGCNN training
pipelines (unit-sphere normalization, random rotation about the gravity
axis, coordinate jitter, random per-point dropout) so the retraining
experiments exercise the same data path as the paper's models.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.points import PointCloud


def normalize_unit_sphere(cloud: PointCloud) -> PointCloud:
    """Center the cloud at the origin and scale it into the unit sphere."""
    xyz = cloud.xyz - cloud.xyz.mean(axis=0)
    scale = np.linalg.norm(xyz, axis=1).max()
    if scale > 0:
        xyz = xyz / scale
    return PointCloud(xyz, cloud.features, cloud.labels)


def rotation_matrix_z(angle: float) -> np.ndarray:
    """``(3, 3)`` float64 rotation about the z (gravity) axis by
    ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array(
        [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]], dtype=np.float64
    )


def rotate_z(cloud: PointCloud, angle: float) -> PointCloud:
    """Rotate the cloud about the z axis; features and labels ride along."""
    xyz = cloud.xyz @ rotation_matrix_z(angle).T
    return PointCloud(xyz, cloud.features, cloud.labels)


def random_rotate_z(
    cloud: PointCloud, rng: np.random.Generator
) -> PointCloud:
    return rotate_z(cloud, rng.uniform(0.0, 2.0 * np.pi))


def jitter(
    cloud: PointCloud,
    rng: np.random.Generator,
    sigma: float = 0.01,
    clip: float = 0.05,
) -> PointCloud:
    """Add clipped Gaussian noise to every coordinate (PointNet-style)."""
    if sigma < 0 or clip < 0:
        raise ValueError("sigma and clip must be non-negative")
    noise = np.clip(rng.normal(0.0, sigma, cloud.xyz.shape), -clip, clip)
    return PointCloud(cloud.xyz + noise, cloud.features, cloud.labels)


def random_scale(
    cloud: PointCloud,
    rng: np.random.Generator,
    low: float = 0.8,
    high: float = 1.25,
) -> PointCloud:
    """Isotropically scale by a factor drawn from ``[low, high]``."""
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    return PointCloud(
        cloud.xyz * rng.uniform(low, high), cloud.features, cloud.labels
    )


def random_dropout(
    cloud: PointCloud,
    rng: np.random.Generator,
    max_dropout_ratio: float = 0.5,
) -> PointCloud:
    """Replace a random prefix-ratio of points with the first point.

    This is the standard PointNet++ augmentation: dropped points are
    duplicated from point 0 rather than removed, so the cloud keeps its
    fixed size (which the batched CNNs require).
    """
    if not 0 <= max_dropout_ratio < 1:
        raise ValueError("max_dropout_ratio must be in [0, 1)")
    ratio = rng.uniform(0.0, max_dropout_ratio)
    drop = rng.random(len(cloud)) < ratio
    if not drop.any():
        return cloud.copy()
    xyz = cloud.xyz.copy()
    xyz[drop] = xyz[0]
    features = None
    if cloud.features is not None:
        features = cloud.features.copy()
        features[drop] = features[0]
    labels = None
    if cloud.labels is not None:
        labels = cloud.labels.copy()
        labels[drop] = labels[0]
    return PointCloud(xyz, features, labels)


def resample_to(
    cloud: PointCloud, count: int, rng: Optional[np.random.Generator] = None
) -> PointCloud:
    """Resample the cloud to exactly ``count`` points.

    Downsampling draws without replacement; upsampling repeats random
    points.  Used by the dataset loaders to honor Table 1's fixed
    points-per-batch sizes.
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = rng or np.random.default_rng(0)
    n = len(cloud)
    if n >= count:
        indices = rng.choice(n, size=count, replace=False)
    else:
        extra = rng.choice(n, size=count - n, replace=True)
        indices = np.concatenate([np.arange(n), extra])
    return cloud.select(indices)
