"""Voxelization of point clouds onto a regular grid.

The voxel grid is the first half of EdgePC's Morton pipeline (paper
Sec. 4.1): continuous coordinates are quantized into integer cell indices
``(i, j, k)`` with ``i = (x - x_min) / r`` for grid size ``r``, and those
integers are then bit-interleaved into a Morton code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.bbox import BoundingBox


@dataclass(frozen=True)
class VoxelGrid:
    """A regular grid of cubic cells covering a bounding box.

    Attributes:
        origin: ``(3,)`` minimum corner of the grid.
        cell_size: side length ``r`` of each cubic cell.
        cells_per_axis: maximum representable cell index + 1 on each axis
            (``2**bits`` when driven by a Morton code width).
    """

    origin: np.ndarray
    cell_size: float
    cells_per_axis: int

    def __post_init__(self) -> None:
        origin = np.asarray(self.origin, dtype=np.float64)
        if origin.shape != (3,):
            raise ValueError("origin must be a 3-vector")
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if self.cells_per_axis < 1:
            raise ValueError("cells_per_axis must be >= 1")
        object.__setattr__(self, "origin", origin)

    @classmethod
    def for_box(cls, box: BoundingBox, bits_per_axis: int) -> "VoxelGrid":
        """Build the grid the paper uses: ``2**bits`` cells along the
        longest side of the bounding box, cubic cells everywhere."""
        cells = 1 << bits_per_axis
        # Expand the box infinitesimally so points exactly on the max face
        # quantize to the last cell rather than one past it.
        size = box.longest_side / cells
        if size <= 0:
            # Degenerate cloud (all points identical): any positive cell
            # size maps every point to cell (0, 0, 0), which is correct.
            size = 1.0
        return cls(box.minimum, size, cells)

    def voxelize(self, points: np.ndarray) -> np.ndarray:
        """Quantize ``(N, 3)`` points into ``(N, 3)`` integer cell indices.

        Indices are clipped into ``[0, cells_per_axis)`` so that boundary
        points (exactly on the max face of the box) remain representable.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        cells = np.floor((points - self.origin) / self.cell_size)
        return np.clip(cells, 0, self.cells_per_axis - 1).astype(np.uint32)

    def cell_center(self, cells: np.ndarray) -> np.ndarray:
        """Continuous float64 coordinates of the centers of
        ``(N, 3)`` cells."""
        cells = np.asarray(cells, dtype=np.float64)
        return self.origin + (cells + 0.5) * self.cell_size

    def quantization_error_bound(self) -> float:
        """Maximum distance between a point and its cell center
        (half the cell diagonal)."""
        return float(self.cell_size * np.sqrt(3.0) / 2.0)

    @property
    def memory_bytes_per_point(self) -> float:
        """Bytes needed to store one point's cell index at this resolution
        (3 axes x bits each, rounded up to whole bits of a packed code)."""
        bits = 3 * max(1, int(np.ceil(np.log2(self.cells_per_axis))))
        return bits / 8.0
