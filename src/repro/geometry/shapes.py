"""Parametric 3-D shape samplers.

These generate the synthetic point clouds used throughout the
reproduction: the dataset packages compose them into ModelNet-like object
classes, ShapeNet-like part-labelled objects, and S3DIS/ScanNet-like
indoor rooms.  All samplers accept a ``density_bias`` knob that skews the
surface sampling so the generated clouds are *irregular* (unevenly
sampled), which is the property of real scans that EdgePC's motivation
section leans on.
"""

from __future__ import annotations

import numpy as np


def _bias_parameter(u: np.ndarray, density_bias: float) -> np.ndarray:
    """Warp uniform samples ``u in [0, 1]`` to concentrate density.

    ``density_bias == 0`` leaves sampling uniform; larger values pile
    points toward small parameter values (power-law warp), producing the
    dense/sparse banding visible in real LiDAR scans.
    """
    if density_bias < 0:
        raise ValueError("density_bias must be non-negative")
    if density_bias == 0:
        return u
    return u ** (1.0 + density_bias)


def sample_sphere(
    n: int,
    rng: np.random.Generator,
    radius: float = 1.0,
    density_bias: float = 0.0,
) -> np.ndarray:
    """Sample ``n`` points on a sphere surface as ``(n, 3)`` float64."""
    u = _bias_parameter(rng.random(n), density_bias)
    theta = 2.0 * np.pi * rng.random(n)
    phi = np.arccos(1.0 - 2.0 * u)
    return radius * np.stack(
        [
            np.sin(phi) * np.cos(theta),
            np.sin(phi) * np.sin(theta),
            np.cos(phi),
        ],
        axis=1,
    )


def sample_ellipsoid(
    n: int,
    rng: np.random.Generator,
    semi_axes: tuple = (1.0, 0.6, 0.4),
    density_bias: float = 0.0,
) -> np.ndarray:
    """Ellipsoid surface with the given semi-axes; returns
    ``(n, 3)`` float64 coordinates."""
    points = sample_sphere(n, rng, 1.0, density_bias)
    return points * np.asarray(semi_axes, dtype=np.float64)


def sample_torus(
    n: int,
    rng: np.random.Generator,
    major_radius: float = 1.0,
    minor_radius: float = 0.35,
    density_bias: float = 0.0,
) -> np.ndarray:
    """Torus surface around the z axis; returns ``(n, 3)`` float64
    coordinates."""
    u = 2.0 * np.pi * _bias_parameter(rng.random(n), density_bias)
    v = 2.0 * np.pi * rng.random(n)
    ring = major_radius + minor_radius * np.cos(v)
    return np.stack(
        [ring * np.cos(u), ring * np.sin(u), minor_radius * np.sin(v)],
        axis=1,
    )


def sample_cylinder(
    n: int,
    rng: np.random.Generator,
    radius: float = 0.5,
    height: float = 2.0,
    density_bias: float = 0.0,
) -> np.ndarray:
    """Open cylinder (lateral surface only), axis along z; returns
    ``(n, 3)`` float64 coordinates."""
    theta = 2.0 * np.pi * rng.random(n)
    z = height * (_bias_parameter(rng.random(n), density_bias) - 0.5)
    return np.stack(
        [radius * np.cos(theta), radius * np.sin(theta), z], axis=1
    )


def sample_cone(
    n: int,
    rng: np.random.Generator,
    radius: float = 0.8,
    height: float = 1.6,
    density_bias: float = 0.0,
) -> np.ndarray:
    """Cone surface with apex at ``(0, 0, height)`` and base in z = 0,
    as ``(n, 3)`` float64 coordinates."""
    # Area-correct sampling along the slant: radius grows linearly with
    # distance from the apex, so take sqrt of a uniform variable.
    t = np.sqrt(_bias_parameter(rng.random(n), density_bias))
    theta = 2.0 * np.pi * rng.random(n)
    r = radius * t
    return np.stack(
        [r * np.cos(theta), r * np.sin(theta), height * (1.0 - t)], axis=1
    )


def sample_box(
    n: int,
    rng: np.random.Generator,
    extents: tuple = (1.0, 1.0, 1.0),
    density_bias: float = 0.0,
) -> np.ndarray:
    """Sample the surface of an axis-aligned box centered at the
    origin; returns ``(n, 3)`` float64 coordinates."""
    ex, ey, ez = (float(v) for v in extents)
    areas = np.array([ey * ez, ex * ez, ex * ey], dtype=np.float64)
    areas = areas / areas.sum()
    axis = rng.choice(3, size=n, p=areas)
    side = rng.choice([-0.5, 0.5], size=n)
    uv = np.stack(
        [
            _bias_parameter(rng.random(n), density_bias) - 0.5,
            rng.random(n) - 0.5,
        ],
        axis=1,
    )
    points = np.empty((n, 3), dtype=np.float64)
    extent = np.array([ex, ey, ez], dtype=np.float64)
    for ax in range(3):
        mask = axis == ax
        others = [a for a in range(3) if a != ax]
        points[mask, ax] = side[mask] * extent[ax]
        points[mask, others[0]] = uv[mask, 0] * extent[others[0]]
        points[mask, others[1]] = uv[mask, 1] * extent[others[1]]
    return points


def sample_plane(
    n: int,
    rng: np.random.Generator,
    extents: tuple = (2.0, 2.0),
    density_bias: float = 0.0,
) -> np.ndarray:
    """Horizontal rectangle in z = 0 (floors/ceilings of rooms), as
    ``(n, 3)`` float64 coordinates."""
    ex, ey = (float(v) for v in extents)
    x = ex * (_bias_parameter(rng.random(n), density_bias) - 0.5)
    y = ey * (rng.random(n) - 0.5)
    return np.stack([x, y, np.zeros(n)], axis=1)


def sample_capsule(
    n: int,
    rng: np.random.Generator,
    radius: float = 0.3,
    height: float = 1.2,
    density_bias: float = 0.0,
) -> np.ndarray:
    """Cylinder with hemispherical caps, axis along z; returns
    ``(n, 3)`` float64 coordinates."""
    cap_area = 4.0 * np.pi * radius**2
    side_area = 2.0 * np.pi * radius * height
    p_side = side_area / (side_area + cap_area)
    on_side = rng.random(n) < p_side
    points = np.empty((n, 3), dtype=np.float64)
    n_side = int(on_side.sum())
    points[on_side] = sample_cylinder(
        n_side, rng, radius, height, density_bias
    )
    sphere = sample_sphere(n - n_side, rng, radius, density_bias)
    sphere[:, 2] += np.sign(sphere[:, 2]) * height / 2.0
    points[~on_side] = sphere
    return points


def sample_helix(
    n: int,
    rng: np.random.Generator,
    radius: float = 0.6,
    pitch: float = 0.25,
    turns: float = 3.0,
    thickness: float = 0.05,
    density_bias: float = 0.0,
) -> np.ndarray:
    """A thin helical tube (a curve-like, highly anisotropic shape),
    as ``(n, 3)`` float64 coordinates."""
    t = turns * 2.0 * np.pi * _bias_parameter(rng.random(n), density_bias)
    noise = rng.normal(0.0, thickness, (n, 3))
    return (
        np.stack([radius * np.cos(t), radius * np.sin(t), pitch * t], axis=1)
        + noise
    )


def sample_gaussian_blob(
    n: int,
    rng: np.random.Generator,
    scales: tuple = (0.5, 0.5, 0.5),
) -> np.ndarray:
    """Volumetric Gaussian cluster (clutter in synthetic scans), as
    ``(n, 3)`` float64 coordinates."""
    return rng.normal(0.0, 1.0, (n, 3)) * np.asarray(scales)


def lumpy_radial_perturbation(
    points: np.ndarray,
    rng: np.random.Generator,
    amplitude: float = 0.15,
    num_lobes: int = 6,
) -> np.ndarray:
    """Displace points radially by a smooth random lobed field.

    Turns analytic surfaces (spheres, ellipsoids) into organic-looking
    blobs — used by the procedural "bunny" model for Fig. 5's sampling
    study.  Returns a float64 array of the input's ``(N, 3)`` shape.
    """
    if amplitude < 0:
        raise ValueError("amplitude must be non-negative")
    directions = rng.normal(size=(num_lobes, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    phases = rng.uniform(0, 2 * np.pi, num_lobes)
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    norms = np.where(norms == 0, 1.0, norms)
    unit = points / norms
    field = np.zeros(points.shape[0])
    for lobe, phase in zip(directions, phases):
        field += np.sin(3.0 * unit @ lobe + phase)
    field = 1.0 + amplitude * field / num_lobes
    return points * field[:, None]
