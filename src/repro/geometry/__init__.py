"""Geometric substrate: point-cloud containers, bounding boxes, voxel
grids, transforms, and parametric shape samplers."""

from repro.geometry.bbox import BoundingBox
from repro.geometry.points import PointCloud
from repro.geometry.voxel import VoxelGrid

__all__ = ["BoundingBox", "PointCloud", "VoxelGrid"]
