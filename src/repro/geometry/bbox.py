"""Axis-aligned bounding boxes for point clouds.

EdgePC voxelizes the point-cloud bounding box before generating Morton
codes (paper Sec. 4.1): the box of dimension ``L x W x H`` is divided into
cubes of side ``r`` (the *grid size*), and each point maps to the integer
index of the cube containing it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned bounding box in 3-D space.

    Attributes:
        minimum: ``(3,)`` array with the smallest coordinate on each axis.
        maximum: ``(3,)`` array with the largest coordinate on each axis.
    """

    minimum: np.ndarray
    maximum: np.ndarray

    def __post_init__(self) -> None:
        minimum = np.asarray(self.minimum, dtype=np.float64)
        maximum = np.asarray(self.maximum, dtype=np.float64)
        if minimum.shape != (3,) or maximum.shape != (3,):
            raise ValueError("bounding box corners must be 3-vectors")
        if not (
            np.isfinite(minimum).all() and np.isfinite(maximum).all()
        ):
            raise ValueError(
                "bounding box corners must be finite; NaN/Inf corners "
                "would poison every Morton code derived from the box"
            )
        if np.any(maximum < minimum):
            raise ValueError("maximum must be >= minimum on every axis")
        object.__setattr__(self, "minimum", minimum)
        object.__setattr__(self, "maximum", maximum)

    @classmethod
    def of_points(cls, points: np.ndarray) -> "BoundingBox":
        """Compute the tight bounding box of an ``(N, 3)`` point array."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("cannot bound an empty point set")
        finite = np.isfinite(points).all(axis=1)
        if not finite.all():
            bad = int((~finite).sum())
            raise ValueError(
                f"cannot bound: {bad} of {points.shape[0]} points "
                "have non-finite coordinates"
            )
        return cls(points.min(axis=0), points.max(axis=0))

    @property
    def extent(self) -> np.ndarray:
        """Side lengths ``(L, W, H)`` of the box, float64 ``(3,)``."""
        return self.maximum - self.minimum

    @property
    def longest_side(self) -> float:
        """The paper's ``D``: the dimension of the bounding cube."""
        return float(self.extent.max())

    @property
    def center(self) -> np.ndarray:
        """Box midpoint as a float64 ``(3,)`` coordinate."""
        return (self.minimum + self.maximum) / 2.0

    @property
    def diagonal(self) -> float:
        return float(np.linalg.norm(self.extent))

    def contains(self, points: np.ndarray) -> np.ndarray:
        """``(N,)`` boolean mask of which points fall inside
        (inclusive) the box."""
        points = np.asarray(points, dtype=np.float64)
        return np.all(
            (points >= self.minimum) & (points <= self.maximum), axis=-1
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        pad = np.full(3, margin, dtype=np.float64)
        return BoundingBox(self.minimum - pad, self.maximum + pad)

    def grid_size_for_bits(self, bits_per_axis: int) -> float:
        """Grid size ``r = D / 2**bits_per_axis`` (paper Sec. 5.1.3).

        ``bits_per_axis`` is ``floor(a / 3)`` for an ``a``-bit Morton code,
        so a 32-bit code gives 10 bits per axis and 1024 cells along the
        longest side of the box.
        """
        if bits_per_axis < 1:
            raise ValueError("need at least one bit per axis")
        return self.longest_side / float(1 << bits_per_axis)
