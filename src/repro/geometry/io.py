"""Point-cloud file I/O: ASCII PLY and XYZ.

Minimal, dependency-free readers/writers so the library interoperates
with the formats real scans ship in (the Stanford models the paper's
Fig. 5 uses are PLY).  Only the features this library consumes are
supported: float vertex positions, optional per-point scalar label,
ASCII encoding.
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from repro.geometry.points import PointCloud


def save_xyz(cloud: PointCloud, path: str) -> None:
    """Write one ``x y z [label]`` line per point."""
    with open(path, "w") as handle:
        for i in range(len(cloud)):
            x, y, z = cloud.xyz[i]
            if cloud.labels is not None:
                handle.write(f"{x} {y} {z} {int(cloud.labels[i])}\n")
            else:
                handle.write(f"{x} {y} {z}\n")


def load_xyz(path: str) -> PointCloud:
    """Read ``x y z [label]`` lines; blank lines and ``#`` comments are
    skipped."""
    xyz: List[List[float]] = []
    labels: List[int] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"{path}:{line_number}: expected 3 or 4 columns, "
                    f"got {len(parts)}"
                )
            xyz.append([float(v) for v in parts[:3]])
            if len(parts) == 4:
                labels.append(int(float(parts[3])))
    if not xyz:
        raise ValueError(f"{path}: no points found")
    if labels and len(labels) != len(xyz):
        raise ValueError(f"{path}: inconsistent label column")
    return PointCloud(
        np.array(xyz),
        labels=np.array(labels, dtype=np.int64) if labels else None,
    )


def save_ply(cloud: PointCloud, path: str) -> None:
    """Write an ASCII PLY with float vertices (+ int label if present)."""
    has_labels = cloud.labels is not None
    with open(path, "w") as handle:
        handle.write("ply\nformat ascii 1.0\n")
        handle.write("comment written by the EdgePC reproduction\n")
        handle.write(f"element vertex {len(cloud)}\n")
        handle.write(
            "property float x\nproperty float y\nproperty float z\n"
        )
        if has_labels:
            handle.write("property int label\n")
        handle.write("end_header\n")
        for i in range(len(cloud)):
            x, y, z = cloud.xyz[i]
            if has_labels:
                handle.write(f"{x} {y} {z} {int(cloud.labels[i])}\n")
            else:
                handle.write(f"{x} {y} {z}\n")


def load_ply(path: str) -> PointCloud:
    """Read an ASCII PLY's vertex element (x, y, z [+ label]).

    Unsupported constructs (binary encodings, list properties, face
    elements with data we'd have to skip past non-vertex elements)
    raise ``ValueError`` rather than guessing.
    """
    with open(path) as handle:
        magic = handle.readline().strip()
        if magic != "ply":
            raise ValueError(f"{path}: not a PLY file")
        vertex_count: Optional[int] = None
        properties: List[str] = []
        in_vertex_element = False
        fmt = None
        for line in handle:
            line = line.strip()
            if line.startswith("comment"):
                continue
            if line.startswith("format"):
                fmt = line.split()[1]
                if fmt != "ascii":
                    raise ValueError(
                        f"{path}: only ascii PLY is supported"
                    )
                continue
            if line.startswith("element"):
                _, name, count = line.split()
                in_vertex_element = name == "vertex"
                if in_vertex_element:
                    vertex_count = int(count)
                elif vertex_count is not None and int(count) > 0:
                    raise ValueError(
                        f"{path}: non-vertex element {name!r} after "
                        "vertices is not supported"
                    )
                continue
            if line.startswith("property"):
                if in_vertex_element:
                    parts = line.split()
                    if parts[1] == "list":
                        raise ValueError(
                            f"{path}: list properties not supported"
                        )
                    properties.append(parts[2])
                continue
            if line == "end_header":
                break
        else:
            raise ValueError(f"{path}: missing end_header")
        if vertex_count is None:
            raise ValueError(f"{path}: no vertex element")
        for axis in ("x", "y", "z"):
            if axis not in properties:
                raise ValueError(f"{path}: missing property {axis!r}")
        column = {name: i for i, name in enumerate(properties)}
        xyz = np.empty((vertex_count, 3))
        labels = (
            np.empty(vertex_count, dtype=np.int64)
            if "label" in column
            else None
        )
        for i in range(vertex_count):
            line = handle.readline()
            if not line:
                raise ValueError(f"{path}: truncated vertex data")
            parts = line.split()
            if len(parts) < len(properties):
                raise ValueError(f"{path}: short vertex row {i}")
            xyz[i, 0] = float(parts[column["x"]])
            xyz[i, 1] = float(parts[column["y"]])
            xyz[i, 2] = float(parts[column["z"]])
            if labels is not None:
                labels[i] = int(float(parts[column["label"]]))
    return PointCloud(xyz, labels=labels)


def load(path: str) -> PointCloud:
    """Dispatch on file extension (.ply / .xyz / .txt)."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".ply":
        return load_ply(path)
    if ext in (".xyz", ".txt"):
        return load_xyz(path)
    raise ValueError(f"unsupported point-cloud format {ext!r}")


def save(cloud: PointCloud, path: str) -> None:
    """Dispatch on file extension (.ply / .xyz / .txt)."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".ply":
        save_ply(cloud, path)
    elif ext in (".xyz", ".txt"):
        save_xyz(cloud, path)
    else:
        raise ValueError(f"unsupported point-cloud format {ext!r}")
