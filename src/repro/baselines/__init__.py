"""Models of the prior-work systems the paper compares against."""

from repro.baselines.comparison import (
    PriorWorkRow,
    as_table,
    table2_rows,
    unique_full_marks,
)
from repro.baselines.crescent import SplitKDTree, verify_against_full_tree
from repro.baselines.mesorasi import (
    DelayedAggregationResult,
    apply_delayed_aggregation,
    summarize,
)
from repro.baselines.pointacc import (
    MappingUnitModel,
    pointnet2_mapping_unit,
)

__all__ = [
    "apply_delayed_aggregation",
    "summarize",
    "DelayedAggregationResult",
    "MappingUnitModel",
    "pointnet2_mapping_unit",
    "SplitKDTree",
    "verify_against_full_tree",
    "PriorWorkRow",
    "table2_rows",
    "as_table",
    "unique_full_marks",
]
