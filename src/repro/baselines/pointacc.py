"""PointAcc mapping-unit model (paper Sec. 6.4, ref [35]).

PointAcc is a custom accelerator whose *mapping unit* computes, for
every sampling/neighbor query, full distance calculations in
``O(N^2)`` time on dedicated hardware.  The paper argues EdgePC is
orthogonal: replacing the mapping unit's distance computation with
Morton-code generation (``O(N)``) would further boost PointAcc.

This module models exactly that argument with operation counts: the
mapping-unit work of a pipeline with and without Morton codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class MappingUnitModel:
    """Counts the distance-unit operations PointAcc's mapping unit
    performs for a PointNet++-style layer stack.

    Args:
        layer_sizes: ``(N_in, n_out)`` per sampling layer.
        k: neighbors per query.
    """

    layer_sizes: Tuple[Tuple[int, int], ...]
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        for n_in, n_out in self.layer_sizes:
            if not 1 <= n_out <= n_in:
                raise ValueError("need 1 <= n_out <= n_in per layer")

    def distance_ops(self) -> int:
        """Distance calculations with the stock mapping unit: FPS
        (``n*N``) plus neighbor search (``n*N``) per layer."""
        total = 0
        for n_in, n_out in self.layer_sizes:
            total += n_out * n_in  # FPS distance updates
            total += n_out * n_in  # neighbor-search scans
        return total

    def morton_ops(self, window_multiplier: int = 2) -> int:
        """Operations with EdgePC folded into the mapping unit:
        Morton generation (``N``) + bitonic-sort stages
        (``N log2 N``) + window scans (``n*W``)."""
        if window_multiplier < 1:
            raise ValueError("window_multiplier must be >= 1")
        import math

        total = 0
        for n_in, n_out in self.layer_sizes:
            total += n_in  # code generation
            total += int(n_in * max(1, math.ceil(math.log2(n_in))))
            total += n_out * min(n_in, window_multiplier * self.k)
        return total

    def speedup(self, window_multiplier: int = 2) -> float:
        """Mapping-unit operation reduction from adopting EdgePC."""
        return self.distance_ops() / self.morton_ops(window_multiplier)


def pointnet2_mapping_unit(
    num_points: int, sa_points: Sequence[int], k: int = 32
) -> MappingUnitModel:
    """Build the mapping-unit model for a PointNet++ SA stack."""
    sizes = [num_points] + list(sa_points)
    layers = tuple(
        (n_in, n_out) for n_in, n_out in zip(sizes[:-1], sizes[1:])
    )
    return MappingUnitModel(layer_sizes=layers, k=k)
