"""Crescent-style split k-d tree (paper Sec. 6.4, ref [17]).

Crescent tames the irregular memory accesses of k-d-tree neighbor
search by splitting the tree into a small *top tree* (hot, cacheable)
and many *bottom trees* (each contiguous in memory).  We reproduce the
data-structure transformation on our from-scratch
:class:`~repro.neighbors.kdtree.KDTree`: queries first descend the top
tree to select candidate bottom trees, then search those exhaustively.
The model also reports the access-locality statistic the idea lives on
(fraction of node visits that hit inside one contiguous bottom tree).

Like the original, this accelerates only the *neighbor search* stage —
the sampling stage is untouched, which is exactly the limitation the
paper's Table 2 records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.neighbors.kdtree import KDTree


@dataclass
class _Region:
    """One bottom tree: a contiguous leaf region of the split."""

    indices: np.ndarray
    center: np.ndarray
    radius: float


class SplitKDTree:
    """A two-level (top/bottom) k-d tree.

    Args:
        points: ``(N, 3)`` cloud to index.
        top_depth: depth of the top tree; the cloud is split into
            ``2**top_depth`` contiguous regions (bottom trees).
    """

    def __init__(self, points: np.ndarray, top_depth: int = 4) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        if top_depth < 1:
            raise ValueError("top_depth must be >= 1")
        if points.shape[0] < (1 << top_depth):
            raise ValueError("not enough points for this top depth")
        self.points = points
        self.top_depth = top_depth
        self.regions: List[_Region] = []
        self._split(np.arange(points.shape[0]), 0)
        # Per-query bookkeeping for the locality statistic.
        self.bottom_visits = 0
        self.top_visits = 0

    def _split(self, indices: np.ndarray, depth: int) -> None:
        if depth == self.top_depth:
            pts = self.points[indices]
            center = pts.mean(axis=0)
            radius = float(
                np.linalg.norm(pts - center, axis=1).max()
            )
            self.regions.append(
                _Region(indices=indices, center=center, radius=radius)
            )
            return
        axis = depth % 3
        order = np.argsort(self.points[indices, axis], kind="stable")
        indices = indices[order]
        half = indices.shape[0] // 2
        self._split(indices[:half], depth + 1)
        self._split(indices[half:], depth + 1)

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def query(self, point: np.ndarray, k: int) -> np.ndarray:
        """Exact k-NN: prune regions by ball-overlap, then scan the
        survivors (each survivor scan is one contiguous memory block)."""
        point = np.asarray(point, dtype=np.float64)
        if not 1 <= k <= self.points.shape[0]:
            raise ValueError("k out of range")
        centers = np.stack([r.center for r in self.regions])
        center_d = np.linalg.norm(centers - point, axis=1)
        order = np.argsort(center_d, kind="stable")
        best: List[tuple] = []
        bound = np.inf
        for region_rank in order:
            region = self.regions[region_rank]
            self.top_visits += 1
            if len(best) == k and (
                center_d[region_rank] - region.radius > bound
            ):
                continue  # provably no closer point inside
            self.bottom_visits += region.indices.shape[0]
            d = np.linalg.norm(
                self.points[region.indices] - point, axis=1
            )
            for dist, idx in zip(d, region.indices):
                best.append((float(dist), int(idx)))
            best.sort()
            best = best[:k]
            if len(best) == k:
                bound = best[-1][0]
        return np.array([idx for _, idx in best], dtype=np.int64)

    def locality_fraction(self) -> float:
        """Fraction of node visits inside contiguous bottom trees —
        Crescent's claim is that this fraction is large, so most
        accesses are streaming rather than pointer-chasing."""
        total = self.top_visits + self.bottom_visits
        if total == 0:
            return 0.0
        return self.bottom_visits / total


def verify_against_full_tree(
    points: np.ndarray, queries: np.ndarray, k: int, top_depth: int = 3
) -> bool:
    """Cross-check SplitKDTree results against the monolithic tree
    (both must return the exact k-NN sets)."""
    split = SplitKDTree(points, top_depth)
    full = KDTree(points)
    for q in np.asarray(queries, dtype=np.float64):
        a = set(split.query(q, k).tolist())
        b = set(full.query(q, k).tolist())
        if a != b:
            return False
    return True
