"""Qualitative prior-work comparison (paper Table 2).

Encodes the paper's Table 2 as data so the benchmark harness can print
it, and derives each row's entries from properties of the corresponding
model in this package where possible (e.g. "accelerates sampling" is
checked against what the baseline model actually rewrites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class PriorWorkRow:
    """One Table 2 row.

    Attributes:
        name: system name.
        preserves_accuracy: no (or negligible) accuracy impact.
        general: applies across PC CNN families (not just graph-based).
        no_design_overhead: runs on commodity hardware without custom
            silicon (the paper's "Design Overhead" column, inverted so
            True is good everywhere).
        accelerates_sampling / accelerates_neighbor_search: which of
            the two bottleneck stages the system addresses.
    """

    name: str
    preserves_accuracy: bool
    general: bool
    no_design_overhead: bool
    accelerates_sampling: bool
    accelerates_neighbor_search: bool


def table2_rows() -> Tuple[PriorWorkRow, ...]:
    """The paper's Table 2, extended with the two bottleneck columns
    discussed in Secs. 2.2.2 and 6.4."""
    return (
        PriorWorkRow(
            "Crescent",
            preserves_accuracy=True,
            general=True,
            no_design_overhead=False,
            accelerates_sampling=False,
            accelerates_neighbor_search=True,
        ),
        PriorWorkRow(
            "PointAcc",
            preserves_accuracy=True,
            general=True,
            no_design_overhead=False,
            accelerates_sampling=True,
            accelerates_neighbor_search=True,
        ),
        PriorWorkRow(
            "Point-X",
            preserves_accuracy=True,
            general=False,
            no_design_overhead=False,
            accelerates_sampling=False,
            accelerates_neighbor_search=True,
        ),
        PriorWorkRow(
            "Mesorasi",
            preserves_accuracy=True,
            general=True,
            no_design_overhead=False,
            accelerates_sampling=False,
            accelerates_neighbor_search=True,
        ),
        PriorWorkRow(
            "EdgePC",
            preserves_accuracy=True,
            general=True,
            no_design_overhead=True,
            accelerates_sampling=True,
            accelerates_neighbor_search=True,
        ),
    )


def as_table(rows: Tuple[PriorWorkRow, ...] = None) -> str:
    """Render the comparison as the paper's check/cross table."""
    rows = rows or table2_rows()

    def mark(flag: bool) -> str:
        return "yes" if flag else "no"

    header = (
        f"{'System':<10}{'Accuracy':>10}{'Generality':>12}"
        f"{'No HW cost':>12}{'Sampling':>10}{'NeighSearch':>13}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<10}{mark(row.preserves_accuracy):>10}"
            f"{mark(row.general):>12}{mark(row.no_design_overhead):>12}"
            f"{mark(row.accelerates_sampling):>10}"
            f"{mark(row.accelerates_neighbor_search):>13}"
        )
    return "\n".join(lines)


def unique_full_marks(rows: Tuple[PriorWorkRow, ...] = None) -> Dict[str, bool]:
    """Which systems check every column (the paper's point: only
    EdgePC does)."""
    rows = rows or table2_rows()
    return {
        row.name: (
            row.preserves_accuracy
            and row.general
            and row.no_design_overhead
            and row.accelerates_sampling
            and row.accelerates_neighbor_search
        )
        for row in rows
    }
