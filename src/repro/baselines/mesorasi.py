"""Mesorasi delayed-aggregation baseline (paper Sec. 6.4, ref [18]).

Mesorasi restructures PointNet-family modules so the shared MLP runs on
the *ungrouped* ``N x C`` features and the (max-pooling) aggregation is
delayed until after feature compute.  That shrinks the MLP input from
``n*k`` rows to ``N`` rows — the paper measures feature compute going
from 88.2 ms to 42.2 ms per batch (2.1x) on PointNet++/S3DIS — but
inflates the feature-grouping stage (now gathering wide post-MLP
features) by 2.73x, and leaves the sampling stage untouched, capping
the end-to-end gain at 1.12x.

This module applies that transformation to a recorded trace: matmul
events from grouped rows are re-priced at ungrouped row counts, and
gather events are re-priced at the (wider) output channel width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.nn.recorder import (
    STAGE_FEATURE,
    STAGE_GROUPING,
    StageEvent,
    StageRecorder,
)


@dataclass(frozen=True)
class DelayedAggregationResult:
    """Latency deltas from applying delayed aggregation to a trace."""

    feature_speedup: float
    grouping_slowdown: float
    end_to_end_speedup: float


def apply_delayed_aggregation(recorder: StageRecorder) -> StageRecorder:
    """Rewrite a baseline trace as Mesorasi would execute it.

    - ``matmul`` events whose rows include a neighbor factor ``k``
      (identifiable through the matching ``gather`` event of the same
      layer) are re-priced with rows divided by ``k``: the MLP now runs
      once per point instead of once per (point, neighbor) pair.
    - ``gather`` events move *after* the MLP, so they gather the MLP's
      output channels; we re-price their channel width to the layer's
      final MLP output width.
    """
    # Layer indices are shared between encoder and decoder modules, so
    # a matmul is identified as *grouped* (and thus rewritable) only
    # when its row count equals the matching gather's batch*n*k shape.
    layer_k: Dict[int, float] = {}
    grouped_rows: Dict[int, float] = {}
    layer_out_channels: Dict[int, float] = {}
    for event in recorder:
        if event.stage == STAGE_GROUPING and event.op == "gather":
            c = event.counts
            layer_k[event.layer] = c["k"]
            grouped_rows[event.layer] = (
                c.get("batch", 1) * c["n_groups"] * c["k"]
            )
    for event in recorder:
        if (
            event.stage == STAGE_FEATURE
            and event.op == "matmul"
            and event.counts.get("rows") == grouped_rows.get(event.layer)
        ):
            layer_out_channels[event.layer] = event.counts["c_out"]

    rewritten = StageRecorder()
    for event in recorder:
        counts = dict(event.counts)
        if (
            event.stage == STAGE_FEATURE
            and event.op == "matmul"
            and counts.get("rows") == grouped_rows.get(event.layer)
        ):
            k = layer_k[event.layer]
            counts["rows"] = counts["rows"] / k
            counts["flops"] = counts["flops"] / k
        elif (
            event.stage == STAGE_GROUPING
            and event.op == "gather"
            and event.layer in layer_out_channels
        ):
            counts["channels"] = layer_out_channels[event.layer]
        rewritten.events.append(
            StageEvent(event.stage, event.op, event.layer, counts)
        )
    return rewritten


def summarize(
    baseline_breakdown, mesorasi_breakdown
) -> DelayedAggregationResult:
    """Build the Sec. 6.4 comparison numbers from two breakdowns."""
    return DelayedAggregationResult(
        feature_speedup=(
            baseline_breakdown.feature_s / mesorasi_breakdown.feature_s
        ),
        grouping_slowdown=(
            mesorasi_breakdown.grouping_s / baseline_breakdown.grouping_s
        ),
        end_to_end_speedup=(
            baseline_breakdown.total_s / mesorasi_breakdown.total_s
        ),
    )
