"""Index-space samplers: raw uniform stride and random sampling.

These are the cheap samplers the paper contrasts with FPS.  Applied to a
*raw* (unordered) cloud, uniform stride sampling gives poor coverage
(paper Fig. 5b); applied to a Morton-sorted cloud, the same stride rule
approaches FPS quality (Fig. 5c) — that second use lives in
:mod:`repro.core.sampler`, built on the primitive here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def uniform_stride_indices(num_points: int, num_samples: int) -> np.ndarray:
    """Every ``N/n``-th index: ``index_k = floor(k * N / n)``.

    This is line 11-12 of the paper's Algorithm 1, expressed over
    positions rather than points — callers map the positions through
    whatever ordering they want (identity for raw clouds, the Morton
    permutation for structurized ones).

    Returns an ``(n,)`` int64 array of strictly increasing positions
    in ``[0, N)``.
    """
    if num_points < 1:
        raise ValueError("num_points must be positive")
    if not 1 <= num_samples <= num_points:
        raise ValueError(
            f"num_samples must be in [1, {num_points}], got {num_samples}"
        )
    return (
        np.arange(num_samples, dtype=np.int64) * num_points // num_samples
    )


def uniform_sample(points: np.ndarray, num_samples: int) -> np.ndarray:
    """Stride-sample a raw ``(N, 3)`` cloud; returns an
    ``(num_samples,)`` int64 index array."""
    points = np.asarray(points)
    return uniform_stride_indices(points.shape[0], num_samples)


def random_sample(
    points: np.ndarray,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample ``num_samples`` distinct indices uniformly at random;
    returns an int64 array of shape ``(num_samples,)``, sorted
    ascending."""
    points = np.asarray(points)
    n_points = points.shape[0]
    if not 1 <= num_samples <= n_points:
        raise ValueError(
            f"num_samples must be in [1, {n_points}], got {num_samples}"
        )
    rng = rng or np.random.default_rng(0)
    return np.sort(rng.choice(n_points, size=num_samples, replace=False))
