"""Voxel-grid down-sampling — the third standard sampler baseline.

Classic libraries (PCL, Open3D) down-sample by bucketing points into a
voxel grid and keeping one representative per occupied voxel.  It is
cheap (``O(N)``) and even, but cannot hit an exact output count — the
property PointNet-family models require — which is why the PC CNN
stacks use FPS instead, and why EdgePC's stride-over-Morton-order trick
(exact count, near-voxel evenness) is attractive.  This module exists
to quantify that comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import morton
from repro.geometry.bbox import BoundingBox
from repro.geometry.voxel import VoxelGrid


def voxel_grid_sample(
    points: np.ndarray,
    cell_size: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """One representative index per occupied voxel.

    The representative is the point closest to its voxel's centroid
    (the Open3D convention, approximated per-voxel).

    Returns a 1-D int64 index array sorted ascending; the output
    count equals the number of occupied voxels and cannot be chosen
    directly.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    box = BoundingBox.of_points(points)
    cells_needed = (
        int(np.ceil(box.longest_side / cell_size)) if (
            box.longest_side > 0
        ) else 1
    )
    grid = VoxelGrid(box.minimum, cell_size, max(1, cells_needed))
    cells = grid.voxelize(points)
    # Use Morton codes as voxel keys (cheap, collision-free).
    keys = morton.encode(np.minimum(cells, (1 << 21) - 1))
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(
        np.diff(sorted_keys, prepend=sorted_keys[0] - 1)
    )
    representatives = []
    for start, stop in zip(
        boundaries, np.append(boundaries[1:], len(points))
    ):
        members = order[start:stop]
        centroid = points[members].mean(axis=0)
        local = np.argmin(
            np.sum((points[members] - centroid) ** 2, axis=1)
        )
        representatives.append(int(members[local]))
    return np.array(sorted(representatives), dtype=np.int64)


def cell_size_for_target_count(
    points: np.ndarray,
    target: int,
    tolerance: float = 0.1,
    max_iterations: int = 30,
) -> float:
    """Binary-search a cell size yielding ~``target`` occupied voxels.

    Demonstrates the baseline's inherent clumsiness: hitting an exact
    count requires an iterative search over grid resolutions, whereas
    FPS and the Morton stride sampler take the count directly.
    """
    points = np.asarray(points, dtype=np.float64)
    if not 1 <= target <= points.shape[0]:
        raise ValueError("target out of range")
    if not 0 < tolerance < 1:
        raise ValueError("tolerance must be in (0, 1)")
    box = BoundingBox.of_points(points)
    lo = box.longest_side / (4.0 * points.shape[0] ** (1 / 3) * 8)
    hi = box.longest_side
    best = hi
    for _ in range(max_iterations):
        mid = np.sqrt(lo * hi)  # geometric bisection
        count = voxel_grid_sample(points, mid).shape[0]
        if abs(count - target) <= tolerance * target:
            return float(mid)
        if count > target:
            lo = mid  # too many voxels -> coarsen
        else:
            hi = mid
        best = mid
    return float(best)
