"""Baseline (exact) samplers and sampling-quality metrics."""

from repro.sampling.fps import (
    FastFpsStats,
    coverage_radius,
    farthest_point_sample,
    farthest_point_sample_batch,
    farthest_point_sample_fast,
    farthest_point_sample_fast_batch,
    fps_operation_count,
)
from repro.sampling.quality import (
    chamfer_distance,
    density_uniformity,
    mean_coverage_distance,
)
from repro.sampling.voxelgrid import (
    cell_size_for_target_count,
    voxel_grid_sample,
)
from repro.sampling.uniform import (
    random_sample,
    uniform_sample,
    uniform_stride_indices,
)

__all__ = [
    "farthest_point_sample",
    "farthest_point_sample_batch",
    "farthest_point_sample_fast",
    "farthest_point_sample_fast_batch",
    "FastFpsStats",
    "fps_operation_count",
    "coverage_radius",
    "uniform_sample",
    "uniform_stride_indices",
    "random_sample",
    "voxel_grid_sample",
    "cell_size_for_target_count",
    "chamfer_distance",
    "density_uniformity",
    "mean_coverage_distance",
]
