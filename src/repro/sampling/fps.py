"""Farthest point sampling (FPS) — the SOTA baseline sampler.

FPS (paper Fig. 7 / Sec. 5.1.1) iteratively grows a sampled set by
always adding the point farthest from everything sampled so far.  It
yields excellent coverage but costs ``O(nN)`` with a serial dependency
between iterations (each pick needs the distance array updated by the
previous pick), which is exactly the bottleneck EdgePC attacks.

``farthest_point_sample`` maintains the running distance-to-sampled-set
array ``D`` and updates it with one vectorized pass per iteration, the
same dataflow as the paper's reference CUDA kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def farthest_point_sample(
    points: np.ndarray,
    num_samples: int,
    start_index: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample ``num_samples`` indices from ``(N, 3)`` points with FPS.

    Thin ``B=1`` wrapper around :func:`farthest_point_sample_batch`.

    Args:
        points: ``(N, 3)`` coordinates.
        num_samples: number of points to select (``1 <= n <= N``).
        start_index: index of the first sampled point.  The paper picks
            it randomly; pass an explicit index for determinism.
        rng: random generator used only when ``start_index`` is None.

    Returns:
        ``(n,)`` integer indices into ``points``, in sampling order.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    return farthest_point_sample_batch(
        points[None], num_samples, start_index, rng
    )[0]


def farthest_point_sample_batch(
    points: np.ndarray,
    num_samples: int,
    start_index: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """FPS over a ``(B, N, 3)`` batch with one vectorized distance
    update per pick for the *whole* batch.

    The ``n`` picks stay serial (each argmax depends on the previous
    update — the dependency EdgePC's sampler removes), but the per-pick
    work runs as single NumPy dispatches over ``B * N`` points instead
    of a Python loop over clouds.  With an explicit ``start_index``
    this is bit-identical to looping :func:`farthest_point_sample` per
    cloud; with a random start the batch draws all ``B`` starts from
    ``rng`` in one call, which consumes the generator differently than
    ``B`` independent per-cloud calls would.

    Returns:
        ``(B, n)`` int64 indices into each cloud, in sampling order.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 3 or points.shape[2] != 3:
        raise ValueError(f"expected (B, N, 3) points, got {points.shape}")
    num_clouds, n_points, _ = points.shape
    if not 1 <= num_samples <= n_points:
        raise ValueError(
            f"num_samples must be in [1, {n_points}], got {num_samples}"
        )
    if start_index is None:
        rng = rng or np.random.default_rng(0)
        starts = rng.integers(n_points, size=num_clouds)
    elif not 0 <= start_index < n_points:
        raise ValueError("start_index out of range")
    else:
        starts = np.full(num_clouds, start_index, dtype=np.int64)

    rows = np.arange(num_clouds)
    selected = np.empty((num_clouds, num_samples), dtype=np.int64)
    selected[:, 0] = starts
    # D: squared distance from each point to its cloud's sampled set so
    # far, maintained via the expansion ||p - s||^2 = ||p||^2 - 2 p.s
    # + ||s||^2 with ||p||^2 hoisted out of the pick loop: one small
    # matmul per pick instead of materializing (B, N, 3) differences.
    # Rounding in the expansion can dip a hair below zero, which is
    # harmless — the values only feed minimum/argmax.  Selected points
    # are pinned to -1 (below any rounding error) so degenerate clouds
    # (all distances zero) still yield distinct indices.
    p_sq = np.einsum("bnc,bnc->bn", points, points)
    dot = np.empty((num_clouds, n_points, 1), dtype=np.float64)
    delta = np.empty_like(p_sq)
    distance = np.empty_like(p_sq)

    def distance_to(picks: np.ndarray, out: np.ndarray) -> None:
        np.matmul(points, points[rows, picks][:, :, None], out=dot)
        np.multiply(dot[:, :, 0], -2.0, out=out)
        out += p_sq
        out += p_sq[rows, picks][:, None]

    distance_to(starts, distance)
    distance[rows, starts] = -1.0
    for i in range(1, num_samples):
        # O(BN) update per pick -> O(nBN) total; picks are serial
        # because each argmax depends on the previous update.
        farthest = np.argmax(distance, axis=1)
        selected[:, i] = farthest
        distance_to(farthest, delta)
        np.minimum(distance, delta, out=distance)
        distance[rows, farthest] = -1.0
    return selected


def fps_operation_count(num_points: int, num_samples: int) -> int:
    """Distance evaluations FPS performs: ``n`` passes over ``N`` points.

    Used by the edge-device cost model to price the baseline sampler.
    """
    if num_points < 0 or num_samples < 0:
        raise ValueError("counts must be non-negative")
    return num_points * num_samples


def coverage_radius(
    points: np.ndarray, sampled_indices: np.ndarray
) -> float:
    """Largest distance from any point to its nearest sampled point.

    The standard quality metric for down-sampling: FPS greedily
    (2-approximately) minimizes it.  Lower is better.
    """
    points = np.asarray(points, dtype=np.float64)
    sampled = points[np.asarray(sampled_indices)]
    # Chunk the distance matrix so 40k-point clouds don't blow memory.
    worst = 0.0
    chunk = 4096
    for lo in range(0, points.shape[0], chunk):
        block = points[lo : lo + chunk]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ sampled.T
            + np.sum(sampled**2, axis=1)[None, :]
        )
        worst = max(worst, float(np.sqrt(max(d2.min(axis=1).max(), 0.0))))
    return worst
