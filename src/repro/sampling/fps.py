"""Farthest point sampling (FPS) — the SOTA baseline sampler.

FPS (paper Fig. 7 / Sec. 5.1.1) iteratively grows a sampled set by
always adding the point farthest from everything sampled so far.  It
yields excellent coverage but costs ``O(nN)`` with a serial dependency
between iterations (each pick needs the distance array updated by the
previous pick), which is exactly the bottleneck EdgePC attacks.

``farthest_point_sample`` maintains the running distance-to-sampled-set
array ``D`` and updates it with one vectorized pass per iteration, the
same dataflow as the paper's reference CUDA kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

try:  # pragma: no cover - exercised implicitly on import
    # Direct einsum kernel: identical arithmetic to ``np.einsum`` (the
    # wrapper adds only dispatch), but ~2us cheaper per call — which
    # matters in the per-pick loop of the pruned sampler.
    from numpy._core._multiarray_umath import c_einsum as _einsum
except ImportError:  # pragma: no cover - numpy < 2.0 layout
    try:
        from numpy.core._multiarray_umath import (  # type: ignore
            c_einsum as _einsum,
        )
    except ImportError:
        _einsum = np.einsum  # type: ignore[assignment]

#: Relative inflation applied to the prune threshold (the squared
#: center distance below which a block must be updated), so float
#: rounding in the bound computation can never prune an update that
#: would have changed a distance.
_THR_SLACK = 1.0 + 1e-9


def farthest_point_sample(
    points: np.ndarray,
    num_samples: int,
    start_index: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample ``num_samples`` indices from ``(N, 3)`` points with FPS.

    Thin ``B=1`` wrapper around :func:`farthest_point_sample_batch`.

    Args:
        points: ``(N, 3)`` coordinates.
        num_samples: number of points to select (``1 <= n <= N``).
        start_index: index of the first sampled point.  The paper picks
            it randomly; pass an explicit index for determinism.
        rng: random generator used only when ``start_index`` is None.

    Returns:
        ``(n,)`` integer indices into ``points``, in sampling order.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    return farthest_point_sample_batch(
        points[None], num_samples, start_index, rng
    )[0]


def farthest_point_sample_batch(
    points: np.ndarray,
    num_samples: int,
    start_index: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """FPS over a ``(B, N, 3)`` batch with one vectorized distance
    update per pick for the *whole* batch.

    The ``n`` picks stay serial (each argmax depends on the previous
    update — the dependency EdgePC's sampler removes), but the per-pick
    work runs as single NumPy dispatches over ``B * N`` points instead
    of a Python loop over clouds.  With an explicit ``start_index``
    this is bit-identical to looping :func:`farthest_point_sample` per
    cloud; with a random start the batch draws all ``B`` starts from
    ``rng`` in one call, which consumes the generator differently than
    ``B`` independent per-cloud calls would.

    Returns:
        ``(B, n)`` int64 indices into each cloud, in sampling order.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 3 or points.shape[2] != 3:
        raise ValueError(f"expected (B, N, 3) points, got {points.shape}")
    num_clouds, n_points, _ = points.shape
    if not 1 <= num_samples <= n_points:
        raise ValueError(
            f"num_samples must be in [1, {n_points}], got {num_samples}"
        )
    if start_index is None:
        rng = rng or np.random.default_rng(0)
        starts = rng.integers(n_points, size=num_clouds)
    elif not 0 <= start_index < n_points:
        raise ValueError("start_index out of range")
    else:
        starts = np.full(num_clouds, start_index, dtype=np.int64)

    rows = np.arange(num_clouds)
    selected = np.empty((num_clouds, num_samples), dtype=np.int64)
    selected[:, 0] = starts
    # D: squared distance from each point to its cloud's sampled set so
    # far, maintained via the expansion ||p - s||^2 = ||p||^2 - 2 p.s
    # + ||s||^2 with ||p||^2 hoisted out of the pick loop, instead of
    # materializing (B, N, 3) differences.  The dot product is an
    # einsum rather than a BLAS matmul: einsum's per-element rounding
    # is bit-identical regardless of array length, offset, batching,
    # and layout (BLAS kernels are not), which is what lets the pruned
    # sampler (:func:`farthest_point_sample_fast`) reproduce these
    # values exactly on gathered block slices.  Rounding in the
    # expansion can dip a hair below zero, which is harmless — the
    # values only feed minimum/argmax.  Selected points are pinned to
    # -1 (below any rounding error) so degenerate clouds (all
    # distances zero) still yield distinct indices.
    p_sq = np.einsum("bnc,bnc->bn", points, points)
    dot = np.empty_like(p_sq)
    delta = np.empty_like(p_sq)
    distance = np.empty_like(p_sq)

    def distance_to(picks: np.ndarray, out: np.ndarray) -> None:
        np.einsum("bnc,bc->bn", points, points[rows, picks], out=dot)
        np.multiply(dot, -2.0, out=out)
        out += p_sq
        out += p_sq[rows, picks][:, None]

    distance_to(starts, distance)
    distance[rows, starts] = -1.0
    for i in range(1, num_samples):
        # O(BN) update per pick -> O(nBN) total; picks are serial
        # because each argmax depends on the previous update.
        farthest = np.argmax(distance, axis=1)
        selected[:, i] = farthest
        distance_to(farthest, delta)
        np.minimum(distance, delta, out=distance)
        distance[rows, farthest] = -1.0
    return selected


@dataclass
class FastFpsStats:
    """Scan accounting for :func:`farthest_point_sample_fast`.

    The pruned sampler replaces the reference's unconditional
    ``n x N`` distance evaluations with per-block updates that are
    skipped whenever a geometric bound proves them no-ops, so the
    interesting quantity is how much of the worst case was actually
    scanned.  A single instance can be threaded through a batch (or a
    serving session) to accumulate totals.

    Attributes:
        num_points: total points across all sampled clouds.
        num_samples: total picks across all sampled clouds.
        points_scanned: distance evaluations actually performed.
        block_updates_applied: (block, pick) updates that ran.
        block_updates_pruned: (block, pick) updates skipped by the
            geometric bound (provably no-ops).
    """

    num_points: int = 0
    num_samples: int = 0
    points_scanned: int = 0
    block_updates_applied: int = 0
    block_updates_pruned: int = 0

    @property
    def worst_case(self) -> int:
        """Distance evaluations the unpruned reference would perform."""
        return fps_operation_count(self.num_points, self.num_samples)

    @property
    def scan_fraction(self) -> float:
        """``points_scanned / worst_case`` (1.0 for an empty run)."""
        worst = self.worst_case
        return self.points_scanned / worst if worst else 1.0


def _fast_block_size(num_points: int) -> int:
    """Default Morton-block width.

    Small blocks prune tighter (each carries a smaller bounding
    sphere), and the per-pick block bookkeeping is a handful of
    vectorized ``O(N / W)`` dispatches either way, so narrow widths
    win; 16-48 measured best from 8k to 100k points."""
    return 16 if num_points <= 16384 else 32


def farthest_point_sample_fast(
    points: np.ndarray,
    num_samples: int,
    start_index: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    block_size: Optional[int] = None,
    stats: Optional[FastFpsStats] = None,
) -> np.ndarray:
    """Pruning FPS (FlashFPS-style), bit-identical to the reference.

    Same greedy farthest-point chain as :func:`farthest_point_sample`,
    but the ``O(nN)`` per-pick distance pass is pruned with
    Morton-contiguous blocks:

    - points are partitioned into blocks of Morton-order neighbors, so
      each block is spatially tight and carries a meaningful bounding
      sphere;
    - each block caches the exact maximum of its points'
      distance-to-picked-set, so the per-pick argmax is an ``O(N/W)``
      scan over block maxima instead of ``O(N)`` over points;
    - a pick whose geometric lower bound ``(||pick - center|| - r)^2``
      to a block already exceeds that block's maximum is provably a
      no-op for every point in the block and is pruned without
      touching any of them; the surviving blocks are updated in one
      vectorized gather/scatter pass per pick.

    Bit-exactness: pruned updates are exact no-ops, applied updates run
    the reference's elementwise distance expression (whose per-element
    rounding is independent of slice offset, length, and layout) on
    block slices, and the min-fold over picks is exactly associative —
    so every pick, including index tie-breaks (lowest original index,
    matching ``np.argmax``), equals the reference's.

    Args:
        points: ``(N, 3)`` float coordinates (cast to float64).
        num_samples: number of points to select (``1 <= n <= N``).
        start_index: index of the first sampled point.  ``None`` with
            ``rng`` draws it like the reference; ``None`` without
            ``rng`` seeds from the Morton-first point (rank 0), which
            approximates the lowest corner of the cloud and is fully
            deterministic.
        rng: random generator used only when ``start_index`` is None.
        block_size: Morton-block width (``>= 2``); default scales as
            ``~sqrt(8 N)``.
        stats: optional :class:`FastFpsStats` accumulating scan counts.

    Returns:
        ``(n,)`` int64 indices into ``points``, in sampling order —
        byte-identical to :func:`farthest_point_sample` for the same
        ``start_index``.
    """
    from repro.core.structurize import structurize

    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    n_points = points.shape[0]
    if not 1 <= num_samples <= n_points:
        raise ValueError(
            f"num_samples must be in [1, {n_points}], got {num_samples}"
        )
    order = structurize(points)
    if start_index is None:
        if rng is not None:
            start = int(rng.integers(n_points))
        else:
            start = int(order.permutation[0])
    elif not 0 <= start_index < n_points:
        raise ValueError("start_index out of range")
    else:
        start = int(start_index)

    if stats is not None:
        stats.num_points += n_points
        stats.num_samples += num_samples
    selected = np.empty(num_samples, dtype=np.int64)
    selected[0] = start
    if num_samples == 1:
        return selected

    if block_size is None:
        block_size = _fast_block_size(n_points)
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    perm = order.permutation
    pos_of = order.ranks  # original index -> sorted position
    sp = points[perm]  # Morton-sorted coordinates
    # ||p||^2 with the exact einsum shape the reference uses, gathered
    # into sorted order (gather preserves bits; recomputing may not).
    p_sq_orig = np.einsum("bnc,bnc->bn", points[None], points[None])[0]
    p_sq = p_sq_orig[perm]

    # Blocked layout: nb uniform-width blocks over the sorted order,
    # the last padded up to block_size.  Pad lanes copy a real point of
    # their block (so they never widen its bounding sphere) but carry
    # ||p||^2 = -inf, which drives their cached distance to -inf —
    # below every real value (selected points pin to -1), so pads can
    # never win a max and a min-update keeps them at -inf.
    nb = -(-n_points // block_size)
    padded = nb * block_size
    sp_b = np.zeros((nb, block_size, 3), dtype=np.float64)
    sp_b.reshape(-1, 3)[:n_points] = sp
    p_sq_b = np.full((nb, block_size), -np.inf, dtype=np.float64)
    p_sq_b.reshape(-1)[:n_points] = p_sq
    # Bounding sphere per block; the radius is inflated a hair so
    # rounding in the half-diagonal cannot shrink the true enclosing
    # sphere.  Pads reuse the first block point so they never widen it.
    sp_pad = sp_b.reshape(-1, 3)
    if padded > n_points:
        sp_pad[n_points:] = sp[n_points - n_points % block_size]
    lo_c = sp_b.min(axis=1)
    hi_c = sp_b.max(axis=1)
    centers = 0.5 * (lo_c + hi_c)
    radii = 0.5 * np.sqrt(np.sum((hi_c - lo_c) ** 2, axis=1))
    radii *= 1.0 + 1e-12
    # Center coordinates as (3, nb) planes: the per-pick bound test
    # broadcasts the pick against all centers in one dispatch.
    centers_t = np.ascontiguousarray(centers.T)

    # D (blocked): squared distance to the picked set, bit-identical
    # to the reference's array on real lanes; selected points are
    # pinned to -1 exactly like the reference.  The dot product uses
    # the same einsum kernel as the reference, whose per-element
    # rounding is independent of shape, offset, and gathering, on
    # coordinates pre-scaled by -2 — scaling by a power of two is
    # exact and commutes bitwise with the einsum accumulation, so
    # einsum(-2 p, s) == -2 einsum(p, s) while saving one full pass
    # over the update slab per pick.
    sp_m2 = sp_b * -2.0
    start_pos = int(pos_of[start])
    s_vec = sp_pad[start_pos].copy()
    D = np.einsum("kbc,c->kb", sp_m2, s_vec)
    D += p_sq_b
    D += p_sq_orig[start]
    D[start_pos // block_size, start_pos % block_size] = -1.0
    if stats is not None:
        stats.points_scanned += n_points

    # Exact per-block maxima of D (kept exact throughout: a pruned
    # update is a proven no-op, so skipping it cannot stale the max)
    # and the derived prune threshold: block b must fold pick s in if
    # ||s - center_b||^2 < (r_b + sqrt(max(max_b, 0)))^2, inflated so
    # float rounding can never prune an update that would land.
    # (Admitting a block the exact geometry would skip is harmless:
    # applied updates always compute exact reference values.)
    ubs = D.max(axis=1)
    thr2 = np.sqrt(np.maximum(ubs, 0.0))
    thr2 += radii
    thr2 *= thr2
    thr2 *= _THR_SLACK
    # Real (non-pad) lanes per block, for honest scan accounting.
    lens_b = np.full(nb, block_size, dtype=np.int64)
    lens_b[-1] = n_points - (nb - 1) * block_size
    # Reused per-pick scratch (the pick loop is dispatch-bound, so
    # every avoidable allocation and wrapper layer counts).
    s_col = np.empty((3, 1), dtype=np.float64)
    diff = np.empty_like(centers_t)
    dc2 = np.empty(nb, dtype=np.float64)
    mask_b = np.empty(nb, dtype=bool)
    mask_l = np.empty(block_size, dtype=bool)
    d_buf = np.empty_like(D)
    mx_buf = np.empty(nb, dtype=np.float64)
    # Ufunc bindings hoisted out of the pick loop: at ~25 numpy
    # dispatches per pick, even attribute lookups are measurable.
    _sub, _mul, _less = np.subtract, np.multiply, np.less
    _addred, _maxred = np.add.reduce, np.maximum.reduce
    _minimum, _maximum, _sqrt = np.minimum, np.maximum, np.sqrt
    _equal, _cnz = np.equal, np.count_nonzero

    def apply_pick(pos: int) -> None:
        """Fold the distances to the pick at sorted position ``pos``
        into ``D``, skipping provably untouched blocks."""
        s = sp_pad[pos]
        # Squared pick-to-center distance in subtract-first form: its
        # rounding error is relative (no cancellation), so the 1e-9
        # threshold slack strictly dominates it.
        s_col[0, 0] = s[0]
        s_col[1, 0] = s[1]
        s_col[2, 0] = s[2]
        _sub(centers_t, s_col, out=diff)
        _mul(diff, diff, out=diff)
        _addred(diff, axis=0, out=dc2)
        _less(dc2, thr2, out=mask_b)
        # The pick's own block always participates: the caller just
        # pinned the pick's lane to -1 and relies on this update to
        # recompute the block's exact maximum (and threshold).
        mask_b[pos // block_size] = True
        need = mask_b.nonzero()[0]
        applied = need.shape[0]
        if stats is not None:
            stats.block_updates_applied += applied
            stats.block_updates_pruned += nb - applied
            stats.points_scanned += int(lens_b[need].sum())
        if not applied:
            return
        d = d_buf[:applied]
        _einsum("kbc,c->kb", sp_m2[need], s, out=d)
        d += p_sq_b[need]
        d += p_sq_b[pos // block_size, pos % block_size]
        _minimum(D[need], d, out=d)
        D[need] = d
        maxima = _maxred(d, axis=1, out=mx_buf[:applied])
        ubs[need] = maxima
        th = _maximum(maxima, 0.0)
        _sqrt(th, out=th)
        th += radii[need]
        th *= th
        th *= _THR_SLACK
        thr2[need] = th

    for i in range(1, num_samples):
        # ubs holds exact block maxima, so their max equals the
        # reference's argmax value; among exact value ties the
        # reference's np.argmax takes the lowest original index, which
        # we recover by scanning every tied block (pads sit at -inf
        # and never tie: real maxima are pinned at >= -1).
        b0 = int(ubs.argmax())
        best = ubs[b0]
        _equal(ubs, best, out=mask_b)
        if _cnz(mask_b) == 1:
            _equal(D[b0], best, out=mask_l)
            hits = mask_l.nonzero()[0]
            if hits.shape[0] == 1:
                winner = int(perm[b0 * block_size + int(hits[0])])
            else:
                winner = int(perm[b0 * block_size + hits].min())
        else:
            winner = -1
            for b in mask_b.nonzero()[0]:
                hits = (D[b] == best).nonzero()[0]
                cand = int(perm[int(b) * block_size + hits].min())
                if winner < 0 or cand < winner:
                    winner = cand
        pos = int(pos_of[winner])
        selected[i] = winner
        wb, lane = pos // block_size, pos % block_size
        D[wb, lane] = -1.0
        if i + 1 < num_samples:
            # apply_pick force-includes block wb, refreshing its exact
            # maximum and threshold after the pin above; after the
            # final pick the (stale) bookkeeping is never read again.
            apply_pick(pos)
    return selected


def farthest_point_sample_fast_batch(
    points: np.ndarray,
    num_samples: int,
    start_index: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    block_size: Optional[int] = None,
    stats: Optional[FastFpsStats] = None,
) -> np.ndarray:
    """Pruning FPS over a ``(B, N, 3)`` batch.

    The pick chain is serial and the pruning state (block bounds,
    cached distances) is data-dependent per cloud, so the batch axis is
    a loop over :func:`farthest_point_sample_fast` — unlike the brute
    batch kernel there is no shared per-pick dispatch to amortize.  The
    fast path wins at large ``N`` where per-cloud pruning dominates.

    With ``start_index=None`` and an explicit ``rng``, the ``B`` start
    indices are drawn in one ``rng.integers(N, size=B)`` call, matching
    :func:`farthest_point_sample_batch`'s generator consumption
    exactly; with no ``rng`` either, each cloud seeds from its
    Morton-first point.

    Returns:
        ``(B, n)`` int64 indices into each cloud, in sampling order —
        byte-identical to :func:`farthest_point_sample_batch` for the
        same starts.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 3 or points.shape[2] != 3:
        raise ValueError(f"expected (B, N, 3) points, got {points.shape}")
    num_clouds, n_points, _ = points.shape
    if not 1 <= num_samples <= n_points:
        raise ValueError(
            f"num_samples must be in [1, {n_points}], got {num_samples}"
        )
    starts: Optional[np.ndarray] = None
    if start_index is None and rng is not None:
        starts = rng.integers(n_points, size=num_clouds)
    selected = np.empty((num_clouds, num_samples), dtype=np.int64)
    for row in range(num_clouds):
        selected[row] = farthest_point_sample_fast(
            points[row],
            num_samples,
            start_index=(
                int(starts[row]) if starts is not None else start_index
            ),
            block_size=block_size,
            stats=stats,
        )
    return selected


def fps_operation_count(
    num_points: int,
    num_samples: int,
    stats: Optional[FastFpsStats] = None,
) -> int:
    """Distance evaluations FPS performs.

    Without ``stats`` this is the reference sampler's unconditional
    worst case — ``n`` passes over ``N`` points.  The pruned sampler
    (:func:`farthest_point_sample_fast`) scans a data-dependent subset
    of that; pass the :class:`FastFpsStats` it filled in to get the
    count it actually performed (its expected cost), while
    ``stats.worst_case`` keeps the unpruned bound for comparison.

    Used by the edge-device cost model to price the baseline sampler.
    """
    if num_points < 0 or num_samples < 0:
        raise ValueError("counts must be non-negative")
    if stats is not None:
        return stats.points_scanned
    return num_points * num_samples


def coverage_radius(
    points: np.ndarray, sampled_indices: np.ndarray
) -> float:
    """Largest distance from any point to its nearest sampled point.

    The standard quality metric for down-sampling: FPS greedily
    (2-approximately) minimizes it.  Lower is better.
    """
    points = np.asarray(points, dtype=np.float64)
    sampled = points[np.asarray(sampled_indices)]
    # Chunk the distance matrix so 40k-point clouds don't blow memory.
    worst = 0.0
    chunk = 4096
    for lo in range(0, points.shape[0], chunk):
        block = points[lo : lo + chunk]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ sampled.T
            + np.sum(sampled**2, axis=1)[None, :]
        )
        worst = max(worst, float(np.sqrt(max(d2.min(axis=1).max(), 0.0))))
    return worst
