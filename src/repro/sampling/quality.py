"""Sampling-quality metrics for comparing samplers (paper Fig. 5).

The paper argues visually that Morton-uniform sampling covers the input
cloud almost as well as FPS while raw-uniform sampling leaves dense
bands and sparse holes.  These metrics quantify that argument so the
Fig. 5 benchmark can report numbers instead of pictures:

- :func:`coverage_radius` (re-exported from :mod:`repro.sampling.fps`):
  worst-case distance from any input point to its closest sample.
- :func:`mean_coverage_distance`: the average of that distance.
- :func:`chamfer_distance`: symmetric average closest-point distance
  between the sample set and the input.
- :func:`density_uniformity`: coefficient of variation of per-sample
  Voronoi cell populations — lower means samples are spread evenly.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.fps import coverage_radius

__all__ = [
    "coverage_radius",
    "mean_coverage_distance",
    "chamfer_distance",
    "density_uniformity",
]

_CHUNK = 4096


def _nearest_sample_info(points: np.ndarray, sampled: np.ndarray):
    """Per input point: (distance to, index of) its nearest sample."""
    n = points.shape[0]
    nearest_d = np.empty(n, dtype=np.float64)
    nearest_i = np.empty(n, dtype=np.int64)
    s_sq = np.sum(sampled**2, axis=1)[None, :]
    for lo in range(0, n, _CHUNK):
        block = points[lo : lo + _CHUNK]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ sampled.T
            + s_sq
        )
        np.maximum(d2, 0.0, out=d2)
        nearest_i[lo : lo + _CHUNK] = np.argmin(d2, axis=1)
        nearest_d[lo : lo + _CHUNK] = np.sqrt(d2.min(axis=1))
    return nearest_d, nearest_i


def mean_coverage_distance(
    points: np.ndarray, sampled_indices: np.ndarray
) -> float:
    """Average distance from each input point to its nearest sample."""
    points = np.asarray(points, dtype=np.float64)
    sampled = points[np.asarray(sampled_indices)]
    distances, _ = _nearest_sample_info(points, sampled)
    return float(distances.mean())


def chamfer_distance(set_a: np.ndarray, set_b: np.ndarray) -> float:
    """Symmetric chamfer distance between two ``(*, 3)`` point sets."""
    set_a = np.asarray(set_a, dtype=np.float64)
    set_b = np.asarray(set_b, dtype=np.float64)
    d_ab, _ = _nearest_sample_info(set_a, set_b)
    d_ba, _ = _nearest_sample_info(set_b, set_a)
    return float(d_ab.mean() + d_ba.mean())


def density_uniformity(
    points: np.ndarray, sampled_indices: np.ndarray
) -> float:
    """Coefficient of variation of Voronoi-cell populations.

    Each input point is assigned to its nearest sample; a perfectly even
    sampler gives every sample ``N/n`` points (CV 0).  Raw-uniform
    sampling on an irregular cloud concentrates samples in dense regions,
    inflating the CV.
    """
    points = np.asarray(points, dtype=np.float64)
    sampled_indices = np.asarray(sampled_indices)
    sampled = points[sampled_indices]
    _, owners = _nearest_sample_info(points, sampled)
    counts = np.bincount(owners, minlength=sampled_indices.shape[0])
    mean = counts.mean()
    if mean == 0:
        return 0.0
    return float(counts.std() / mean)
