"""Ablation studies for EdgePC's design choices.

Not figures from the paper — these probe the *why* behind its design
points with the same machinery:

1. window re-ranking (W > k) vs pure index pick (W = k): what the
   extra distance computations buy;
2. DGCNN reuse distance 0/1/2/3: latency vs the accuracy proxy
   (neighbor staleness);
3. sorted grouping on/off (Sec. 5.4.2 as a config knob);
4. the Morton-vs-FPS crossover: below which cloud size the sort
   launch latency makes the approximation a net loss.
"""

import numpy as np
from conftest import print_header

from repro.core import EdgePCConfig, MortonNeighborSearch, structurize
from repro.datasets import ScanNetLike
from repro.neighbors import false_neighbor_ratio, knn
from repro.nn.recorder import STAGE_SAMPLE, StageEvent
from repro.runtime import CostModel, PipelineProfiler, compare, xavier
from repro.workloads import standard_workloads, trace


def test_ablation_window_rerank(benchmark, rng):
    """W = k (no re-rank) vs W = 2k (re-rank k best of 2k)."""
    cloud = ScanNetLike(num_clouds=1, points_per_cloud=2048, seed=0)[
        0
    ].xyz
    order = structurize(cloud)
    queries = rng.choice(2048, 512, replace=False)
    exact = knn(cloud[queries], cloud, 16)

    pure = MortonNeighborSearch(16, 16)
    rerank = MortonNeighborSearch(16, 32)
    approx_pure = pure.search(cloud, queries, order)
    approx_rerank = benchmark(
        lambda: rerank.search(cloud, queries, order)
    )

    fnr_pure = false_neighbor_ratio(approx_pure, exact)
    fnr_rerank = false_neighbor_ratio(approx_rerank, exact)
    ops_pure = pure.operation_count(512)
    ops_rerank = rerank.operation_count(512)

    print_header("Ablation: window re-ranking (k = 16)")
    print(
        f"W = k : FNR {fnr_pure * 100:5.1f}%  ({ops_pure:,} ops)\n"
        f"W = 2k: FNR {fnr_rerank * 100:5.1f}%  ({ops_rerank:,} ops)"
    )
    # Doubling the ops must buy a real FNR reduction.
    assert fnr_rerank < fnr_pure - 0.05
    assert ops_rerank == 2 * ops_pure


def test_ablation_reuse_distance(benchmark, profiler, baseline_config):
    """Reuse distance sweep on W6: latency falls, staleness rises."""
    spec = standard_workloads()["W6"]
    base = trace(spec, baseline_config)
    rows = []
    for distance in (0, 1, 2, 3):
        config = EdgePCConfig(reuse_distance=distance)
        report = compare(
            profiler, base, baseline_config,
            trace(spec, config), config,
        )
        reuse_events = sum(
            1 for e in trace(spec, config) if e.op == "reuse"
        )
        rows.append(
            (distance, report.sample_neighbor_speedup, reuse_events)
        )
    benchmark(lambda: trace(spec, EdgePCConfig(reuse_distance=1)))

    print_header("Ablation: DGCNN neighbor-reuse distance (W6)")
    print(f"{'distance':>9}{'S+N speedup':>13}{'modules reused':>16}")
    for distance, speedup, reused in rows:
        print(f"{distance:>9}{speedup:>12.2f}x{reused:>16}")

    speedups = {r[0]: r[1] for r in rows}
    reused = {r[0]: r[2] for r in rows}
    # Distance 0 never reuses; any reuse beats it.
    assert reused[0] == 0
    assert all(speedups[d] > speedups[0] for d in (1, 2, 3))
    # Reusing everything (distance 3) is the latency optimum.
    assert speedups[3] == max(speedups.values())
    # The schedule's *parity* matters, not just the count: distance 1
    # leaves the cheap EC3 computing while distance 2 leaves the
    # twice-as-wide EC4 computing — so distance 1 (the paper's pick)
    # is faster despite reusing the same number of modules.
    assert reused[1] == reused[2]
    assert speedups[1] > speedups[2]


def test_ablation_sorted_grouping(benchmark, profiler):
    """Sec. 5.4.2 as a config knob: grouping-stage latency."""
    spec = standard_workloads()["W1"]
    plain_cfg = EdgePCConfig.paper_default()
    sorted_cfg = EdgePCConfig(sorted_grouping=True)
    plain = profiler.breakdown(trace(spec, plain_cfg), plain_cfg)
    sorted_b = benchmark(
        lambda: profiler.breakdown(
            trace(spec, sorted_cfg), sorted_cfg
        )
    )

    print_header("Ablation: sorted grouping (W1)")
    print(
        f"grouping latency: {plain.grouping_s * 1e3:.2f} ms -> "
        f"{sorted_b.grouping_s * 1e3:.2f} ms "
        f"(-{(1 - sorted_b.grouping_s / plain.grouping_s) * 100:.0f}%)"
    )
    assert sorted_b.grouping_s < plain.grouping_s
    # Sampling/NS stages are untouched by the knob.
    assert sorted_b.sample_and_neighbor_s == (
        plain.sample_and_neighbor_s
    )


def test_ablation_morton_fps_crossover(benchmark):
    """Find the cloud size where the Morton pipeline starts beating
    FPS on the device — the 'profile your workload first' guidance of
    Sec. 6.3 made quantitative."""
    cost = CostModel(xavier())

    def device_times(n_points: int):
        n_samples = max(1, n_points // 8)
        fps = cost.price(
            StageEvent(
                STAGE_SAMPLE, "fps", 0,
                {"n_points": n_points, "n_samples": n_samples,
                 "batch": 1},
            )
        )
        morton = sum(
            cost.price(StageEvent(STAGE_SAMPLE, op, 0, counts))
            for op, counts in (
                ("morton_gen", {"n_points": n_points, "batch": 1}),
                ("morton_sort", {"n_points": n_points, "batch": 1}),
                ("uniform_pick",
                 {"n_samples": n_samples, "batch": 1}),
            )
        )
        return fps, morton

    sizes = (128, 256, 512, 1024, 2048, 4096, 8192, 16384)
    rows = benchmark(
        lambda: [(n,) + device_times(n) for n in sizes]
    )

    print_header(
        "Ablation: Morton-vs-FPS crossover (sample N -> N/8)"
    )
    print(f"{'N':>7}{'FPS':>10}{'Morton':>10}{'winner':>9}")
    crossover = None
    for n, fps, morton in rows:
        winner = "Morton" if morton < fps else "FPS"
        if winner == "Morton" and crossover is None:
            crossover = n
        print(
            f"{n:>7}{fps * 1e3:>9.2f}m{morton * 1e3:>9.2f}m"
            f"{winner:>9}"
        )

    # Shape: FPS wins on tiny clouds (sort launch floor), Morton wins
    # from some crossover onward, and the gap widens with N.
    assert crossover is not None
    assert 128 < crossover <= 4096
    _, fps_big, morton_big = rows[-1]
    _, fps_cross, morton_cross = [
        r for r in rows if r[0] == crossover
    ][0]
    assert fps_big / morton_big > fps_cross / morton_cross
    _, fps_small, morton_small = rows[0]
    assert morton_small > fps_small


def test_ablation_curve_choice(benchmark, rng):
    """Morton vs Hilbert structurization (the paper assumes Z-order;
    Sec. 4.1's requirements are low complexity + parallelism +
    accuracy).  Hilbert buys a little FNR at a real encoding cost —
    quantifying why Morton's bit-interleave is the right default."""
    import time

    from repro.core.hilbert import hilbert_structurize

    cloud = ScanNetLike(num_clouds=1, points_per_cloud=4096, seed=0)[
        0
    ].xyz
    k = 16
    queries = rng.choice(4096, 512, replace=False)
    exact = knn(cloud[queries], cloud, k)
    searcher = MortonNeighborSearch(k, 2 * k)

    morton_order = benchmark(lambda: structurize(cloud))
    start = time.perf_counter()
    hilbert_order = hilbert_structurize(cloud)
    hilbert_s = time.perf_counter() - start
    start = time.perf_counter()
    structurize(cloud)
    morton_s = time.perf_counter() - start

    fnr_m = false_neighbor_ratio(
        searcher.search(cloud, queries, morton_order), exact
    )
    fnr_h = false_neighbor_ratio(
        searcher.search(cloud, queries, hilbert_order), exact
    )

    print_header("Ablation: space-filling curve choice (k=16, W=2k)")
    print(
        f"Morton : FNR {fnr_m * 100:5.1f}%  encode+sort "
        f"{morton_s * 1e3:7.2f} ms\n"
        f"Hilbert: FNR {fnr_h * 100:5.1f}%  encode+sort "
        f"{hilbert_s * 1e3:7.2f} ms "
        f"({hilbert_s / morton_s:.0f}x slower encoding)"
    )

    # Hilbert's locality is no worse, but its transform costs much
    # more than a bit-interleave — the trade the paper resolves in
    # Morton's favor.
    assert fnr_h <= fnr_m + 0.02
    assert hilbert_s > 2 * morton_s
