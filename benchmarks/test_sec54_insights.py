"""Sec. 5.4: the shifted-bottleneck architectural insights.

(5.4.1) Tensor-core channel merging: a conv with 12 input channels
runs entirely on CUDA cores (paper: 40.4 ms, 0% utilization);
reshaping t = 10 neighboring positions into the channel dimension
keeps FLOPs constant, reaches ~40% utilization, and roughly halves the
latency (paper: 18.3 ms).  The merge/split approximation error stays
small on Morton-ordered (spatially smooth) features.

(5.4.2) Grouping traffic: sorting each row of the gather-index matrix
cuts reads from L2 (paper: -53.9%) and from DRAM (paper: -25.7%).
"""

import numpy as np
from conftest import print_header

from repro.analysis import (
    compare_sorted_gather,
    duplicate_read_fraction,
    merge_analysis,
    merge_split_error,
)
from repro.core import structurize
from repro.datasets import ScanNetLike
from repro.runtime import xavier


def test_sec541_tensor_core_merge(benchmark):
    device = xavier()
    rows = 32 * 1000 * 32  # the paper's 32 x 1000 x 12 x 32 conv
    points = benchmark(
        lambda: merge_analysis(
            device, rows=rows, in_channels=12, out_channels=64,
            merge_factors=(1, 2, 4, 10, 20),
        )
    )

    print_header(
        "Sec. 5.4.1: tensor-core utilization vs channel merge factor"
    )
    print(f"{'t':>4}{'channels':>10}{'util':>8}{'latency':>12}")
    for p in points:
        print(
            f"{p.merge_factor:>4}{p.effective_channels:>10}"
            f"{p.utilization * 100:>7.1f}%"
            f"{p.latency_s * 1e3:>10.2f}ms"
        )

    by_factor = {p.merge_factor: p for p in points}
    # t=1: channel dim below the dispatch threshold -> 0% utilization.
    assert by_factor[1].utilization == 0.0
    # t=10: the paper's ~40% utilization and ~2.2x latency cut.
    assert by_factor[10].utilization == np.round(
        by_factor[10].utilization, 10
    )
    assert 0.3 < by_factor[10].utilization < 0.5
    ratio = by_factor[1].latency_s / by_factor[10].latency_s
    print(f"\nmerge t=10 speedup {ratio:.2f}x (paper 40.4/18.3 = 2.2x)")
    assert 1.8 < ratio < 2.8
    # Utilization (and speed) grows monotonically with the merge.
    utils = [p.utilization for p in points]
    assert utils == sorted(utils)

    # Approximation quality: merging Morton-adjacent points hurts
    # little because they are spatial neighbors with similar features.
    cloud = ScanNetLike(num_clouds=1, points_per_cloud=1024, seed=0)[
        0
    ].xyz
    order = structurize(cloud)
    smooth_features = order.sorted_points(cloud)  # xyz as features
    weight = np.random.default_rng(0).normal(size=(3, 8))
    sorted_err = merge_split_error(smooth_features, weight, 4)
    shuffled = smooth_features[
        np.random.default_rng(1).permutation(1024)
    ]
    shuffled_err = merge_split_error(shuffled, weight, 4)
    print(
        f"merge/split rel. error: Morton-ordered {sorted_err:.3f} vs "
        f"shuffled {shuffled_err:.3f}"
    )
    assert sorted_err < 0.2
    assert sorted_err < shuffled_err / 2


def test_sec542_grouping_traffic(benchmark, rng):
    # A grouping index matrix as the baseline pipeline produces it:
    # ball-query neighbors of a *raw* (unordered) cloud scatter
    # uniformly over the point index range.
    index_matrix = rng.integers(0, 2048, size=(2048, 64))

    result = benchmark.pedantic(
        lambda: compare_sorted_gather(index_matrix),
        rounds=1, iterations=1,
    )

    print_header(
        "Sec. 5.4.2: grouping-stage traffic with row-sorted indexes"
    )
    print(
        f"L2 reads:   {result.unsorted.l2_reads:,} -> "
        f"{result.sorted.l2_reads:,}  "
        f"(-{result.l2_reduction * 100:.1f}%, paper -53.9%)"
    )
    print(
        f"DRAM reads: {result.unsorted.dram_reads:,} -> "
        f"{result.sorted.dram_reads:,}  "
        f"(-{result.dram_reduction * 100:.1f}%, paper -25.7%)"
    )
    dup = duplicate_read_fraction(index_matrix)
    print(f"duplicate gather fraction (nk > N): {dup * 100:.1f}%")

    # Shapes: both traffic classes drop materially; the sharing
    # opportunity exists because nk >> N.
    assert result.l2_reduction > 0.2
    assert result.dram_reduction > 0.2
    assert dup > 0.5
