"""Benchmarks for the extension features beyond the paper's figures.

1. Radix sort kernel vs NumPy's comparison sort on Morton codes;
2. streaming order maintenance vs from-scratch re-sorts over a frame
   sequence;
3. the cost of the (1+eps) guarantee: ranks scanned by the guaranteed
   Z-order search vs EdgePC's fixed window.
"""

import numpy as np
from conftest import print_header

from repro.core import MortonNeighborSearch, radix_argsort, structurize
from repro.core.streaming import StreamingMortonOrder
from repro.datasets import ScanNetLike
from repro.geometry import BoundingBox
from repro.neighbors import ZOrderApproxNN, false_neighbor_ratio, knn


def test_radix_sort_on_codes(benchmark, rng):
    cloud = ScanNetLike(num_clouds=1, points_per_cloud=8192, seed=0)[
        0
    ].xyz
    codes = structurize(cloud).codes

    order = benchmark(lambda: radix_argsort(codes))

    print_header("Extension: radix argsort on 8192 Morton codes")
    reference = np.argsort(codes, kind="stable")
    match = np.array_equal(order, reference)
    print(f"matches numpy stable argsort: {match}")
    assert match


def test_streaming_maintenance(benchmark):
    box = BoundingBox(np.full(3, -1.5), np.full(3, 1.5))
    frames = ScanNetLike(num_clouds=6, points_per_cloud=1024, seed=4)

    def run_stream():
        stream = StreamingMortonOrder(box)
        resort_total = 0
        for frame in frames:
            stream.insert(frame.xyz)
            resort_total += stream.scratch_resort_ops()
        return stream, resort_total

    stream, resort_total = benchmark.pedantic(
        run_stream, rounds=1, iterations=1
    )

    print_header(
        "Extension: streaming order maintenance over 6 frames"
    )
    print(
        f"maintenance ops {stream.maintenance_ops:,} vs "
        f"from-scratch re-sorts {resort_total:,} "
        f"({resort_total / stream.maintenance_ops:.1f}x more)"
    )
    assert (np.diff(stream.codes) >= 0).all()
    assert stream.maintenance_ops < resort_total


def test_guarantee_cost(benchmark, rng):
    """What EdgePC saves by dropping the (1+eps) guarantee."""
    cloud = ScanNetLike(num_clouds=1, points_per_cloud=2048, seed=0)[
        0
    ].xyz
    order = structurize(cloud)
    queries_idx = rng.choice(2048, 32, replace=False)
    k = 16

    window = MortonNeighborSearch(k, 2 * k)
    approx = benchmark(
        lambda: window.search(cloud, queries_idx, order)
    )

    guaranteed = ZOrderApproxNN(cloud, eps=0.5, order=order)
    scanned = []
    exact = knn(cloud[queries_idx], cloud, k)
    hits = 0
    for qi in queries_idx:
        result = guaranteed.query(cloud[qi], k)
        scanned.append(guaranteed.last_scanned)
        hits += 1  # counted via FNR below instead

    fnr_window = false_neighbor_ratio(approx, exact)
    mean_scanned = float(np.mean(scanned))

    print_header(
        "Extension: cost of the (1+eps) guarantee (k=16, N=2048)"
    )
    print(
        f"EdgePC window: {window.window} candidates/query, "
        f"FNR {fnr_window * 100:.1f}% (no guarantee)\n"
        f"(1+0.5)-guaranteed Z-order search: "
        f"{mean_scanned:.0f} ranks scanned/query on average"
    )
    # The guarantee costs an order of magnitude more scanning than the
    # fixed window — the trade-off Sec. 3.2 argues motivates EdgePC.
    assert mean_scanned > 5 * window.window
