"""Wall-clock scaling of the real NumPy kernels.

The simulated device regenerates the paper's numbers; this module
confirms the underlying *complexity shapes* on real hardware (the host
CPU): FPS grows ~quadratically when n scales with N, the Morton
pipeline grows ~N log N, brute kNN grows ~quadratically, and the
window search grows ~linearly.  pytest-benchmark measures the anchor
sizes; the scaling assertions use one-shot timings.
"""

import time

import numpy as np
from conftest import print_header

from repro.core import MortonNeighborSearch, MortonSampler, structurize
from repro.neighbors import knn
from repro.sampling import farthest_point_sample

SIZES = (1000, 2000, 4000, 8000)


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _clouds():
    rng = np.random.default_rng(7)
    return {n: rng.random((n, 3)) for n in SIZES}


def test_scaling_fps_vs_morton(benchmark):
    clouds = _clouds()
    sampler = MortonSampler()
    benchmark(lambda: sampler.sample(clouds[4000], 500))

    fps_times = {
        n: _time(
            lambda c=clouds[n], m=n // 8: farthest_point_sample(
                c, m, start_index=0
            )
        )
        for n in SIZES
    }
    morton_times = {
        n: _time(lambda c=clouds[n], m=n // 8: sampler.sample(c, m))
        for n in SIZES
    }

    print_header("Wall-clock scaling: FPS vs Morton sampler (n = N/8)")
    print(f"{'N':>7}{'FPS':>12}{'Morton':>12}{'ratio':>8}")
    for n in SIZES:
        print(
            f"{n:>7}{fps_times[n] * 1e3:>10.2f}ms"
            f"{morton_times[n] * 1e3:>10.2f}ms"
            f"{fps_times[n] / morton_times[n]:>7.1f}x"
        )

    # FPS cost grows ~quadratically (8x points -> ~64x work), Morton
    # ~linearithmically; allow broad bands for timer noise.
    fps_growth = fps_times[8000] / fps_times[1000]
    morton_growth = morton_times[8000] / morton_times[1000]
    assert fps_growth > 15
    assert morton_growth < fps_growth
    # At the largest size the Morton sampler wins by a wide margin.
    assert morton_times[8000] * 3 < fps_times[8000]


def test_scaling_knn_vs_window(benchmark):
    clouds = _clouds()
    searcher = MortonNeighborSearch(16, 32)
    orders = {n: structurize(c) for n, c in clouds.items()}
    benchmark(
        lambda: searcher.search(clouds[4000], order=orders[4000])
    )

    knn_times = {
        n: _time(lambda c=clouds[n]: knn(c, c, 16)) for n in SIZES
    }
    window_times = {
        n: _time(
            lambda c=clouds[n], o=orders[n]: searcher.search(
                c, order=o
            )
        )
        for n in SIZES
    }

    print_header(
        "Wall-clock scaling: brute kNN vs Morton window (k=16, W=32)"
    )
    print(f"{'N':>7}{'kNN':>12}{'window':>12}{'ratio':>8}")
    for n in SIZES:
        print(
            f"{n:>7}{knn_times[n] * 1e3:>10.2f}ms"
            f"{window_times[n] * 1e3:>10.2f}ms"
            f"{knn_times[n] / window_times[n]:>7.1f}x"
        )

    knn_growth = knn_times[8000] / knn_times[1000]
    window_growth = window_times[8000] / window_times[1000]
    # Quadratic vs linear growth between 1k and 8k points.
    assert knn_growth > 20
    assert window_growth < knn_growth / 2
    assert window_times[8000] * 3 < knn_times[8000]
