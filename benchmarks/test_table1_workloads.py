"""Table 1: the six evaluated workloads.

Prints the workload table and benchmarks the trace synthesizer (the
front-end every latency experiment runs through).
"""

from conftest import print_header

from repro.core import EdgePCConfig
from repro.workloads import standard_workloads, trace


def test_table1_workloads(benchmark):
    specs = standard_workloads()

    def synthesize_all():
        return [
            trace(spec, EdgePCConfig.paper_default())
            for spec in specs.values()
        ]

    traces = benchmark(synthesize_all)

    print_header("Table 1: Workloads used in this work")
    print(
        f"{'Workload':<10}{'Model':<16}{'Dataset':<13}"
        f"{'#Points/Batch':>14}{'Batch':>7}  Task"
    )
    for name, spec in specs.items():
        model = {
            "pointnet2": "PointNet++(s)",
            "dgcnn": f"DGCNN({spec.task[0]})",
        }[spec.model]
        print(
            f"{name:<10}{model:<16}{spec.dataset:<13}"
            f"{spec.points_per_batch:>14}{spec.batch_size:>7}  "
            f"{spec.task.replace('_', ' ')}"
        )

    # Table 1's fixed properties.
    assert specs["W1"].points_per_batch == 8192
    assert specs["W2"].points_per_batch == 8192
    assert specs["W3"].points_per_batch == 1024
    assert specs["W4"].points_per_batch == 2048
    assert specs["W5"].points_per_batch == 4096
    assert specs["W6"].points_per_batch == 8192
    assert all(len(t) > 0 for t in traces)
