"""Table 2 + Sec. 6.4: comparison against prior work.

Qualitative: only EdgePC checks every column (accuracy preserved,
general across PC CNN families, no hardware design overhead, and —
from the Sec. 2.2.2 discussion — both bottleneck stages addressed).

Quantitative (PointAcc): folding the Morton pipeline into PointAcc's
mapping unit replaces O(N^2) distance calculations with O(N log N)
work — the orthogonality argument of Sec. 6.4.
"""

from conftest import print_header

from repro.baselines import (
    as_table,
    pointnet2_mapping_unit,
    table2_rows,
    unique_full_marks,
)


def test_table2_qualitative_comparison(benchmark):
    rows = benchmark(table2_rows)

    print_header("Table 2: qualitative comparison against prior work")
    print(as_table(rows))

    marks = unique_full_marks(rows)
    assert marks["EdgePC"]
    assert sum(marks.values()) == 1
    # Per-system claims from Secs. 2.2.2 / 6.4.
    by_name = {r.name: r for r in rows}
    assert not by_name["Point-X"].general  # graph-based CNNs only
    assert not by_name["Crescent"].accelerates_sampling
    assert not by_name["Mesorasi"].accelerates_sampling
    assert all(
        not by_name[n].no_design_overhead
        for n in ("Crescent", "PointAcc", "Point-X")
    )


def test_sec64_pointacc_mapping_unit(benchmark):
    model = pointnet2_mapping_unit(
        8192, [1024, 256, 64, 16], k=32
    )
    speedup = benchmark(model.speedup)

    print_header(
        "Sec. 6.4: PointAcc mapping unit with EdgePC folded in"
    )
    print(
        f"distance ops (stock): {model.distance_ops():,}\n"
        f"ops with Morton pipeline: {model.morton_ops():,}\n"
        f"mapping-unit op reduction: {speedup:.1f}x"
    )

    # Shape: an order-of-magnitude reduction in mapping-unit work,
    # growing with the point count (O(N^2) vs O(N log N)).
    assert speedup > 10
    bigger = pointnet2_mapping_unit(
        32768, [4096, 1024, 256, 64], k=32
    )
    assert bigger.speedup() > speedup
