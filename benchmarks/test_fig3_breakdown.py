"""Fig. 3: latency breakdown of the baseline PC CNN pipelines.

Paper result: the sample + neighbor search stages take 38%-80% of the
end-to-end inference latency across PointNet++(s)/DGCNN on the four
datasets, growing with the point count (ModelNet's 1024-point clouds
sit at the low end, ScanNet's 8192-point clouds at the high end).
"""

from conftest import print_header

from repro.analysis import format_breakdown_row
from repro.workloads import standard_workloads, trace


def test_fig3_latency_breakdown(
    benchmark, profiler, baseline_config
):
    specs = standard_workloads()
    traces = {
        name: trace(spec, baseline_config)
        for name, spec in specs.items()
    }

    def price_all():
        return {
            name: profiler.breakdown(t, baseline_config)
            for name, t in traces.items()
        }

    breakdowns = benchmark(price_all)

    print_header(
        "Fig. 3: baseline latency breakdown "
        "(paper: sample+NS = 38%-80% of E2E)"
    )
    for name, breakdown in breakdowns.items():
        label = f"{name} {specs[name].model}/{specs[name].dataset}"
        print(format_breakdown_row(label, breakdown))

    fractions = {
        name: b.sample_and_neighbor_fraction
        for name, b in breakdowns.items()
    }
    # Shape 1: every workload spends a large share in sample+NS.
    assert all(0.25 <= f <= 0.85 for f in fractions.values()), fractions
    # Shape 2: the share grows with the point count (ModelNet lowest,
    # the 8192-point ScanNet workloads highest).
    assert fractions["W3"] == min(fractions.values())
    assert fractions["W6"] > 0.65
    assert fractions["W1"] > 0.65
    # Shape 3: at least one workload reaches the paper's ~80% regime.
    assert max(fractions.values()) > 0.70
    # Shape 4: within DGCNN, share increases with points/batch.
    assert fractions["W3"] < fractions["W4"] < fractions["W5"] < (
        fractions["W6"]
    )
