"""Sec. 6.4: the Mesorasi delayed-aggregation comparison.

Paper measurement (PointNet++ / S3DIS): delayed aggregation speeds the
feature-compute stage 2.1x (88.2 -> 42.2 ms per batch) but inflates
the feature-grouping stage 2.73x, and — leaving sampling untouched —
achieves only 1.12x end-to-end, far below EdgePC's gain on the same
workload.
"""

from conftest import print_header

from repro.baselines import apply_delayed_aggregation, summarize
from repro.runtime import compare
from repro.workloads import standard_workloads, trace


def test_sec64_mesorasi_comparison(
    benchmark, profiler, baseline_config, edgepc_config
):
    spec = standard_workloads()["W1"]  # PointNet++ / S3DIS
    baseline = trace(spec, baseline_config)

    mesorasi = benchmark(lambda: apply_delayed_aggregation(baseline))

    result = summarize(
        profiler.breakdown(baseline, baseline_config),
        profiler.breakdown(mesorasi, baseline_config),
    )
    edgepc = compare(
        profiler,
        baseline, baseline_config,
        trace(spec, edgepc_config), edgepc_config,
    )

    print_header(
        "Sec. 6.4: Mesorasi delayed aggregation vs EdgePC "
        "(PointNet++/S3DIS)"
    )
    print(
        f"Mesorasi: FC speedup {result.feature_speedup:.2f}x "
        f"(paper 2.1x) | grouping slowdown "
        f"{result.grouping_slowdown:.2f}x (paper 2.73x) | "
        f"E2E {result.end_to_end_speedup:.2f}x (paper 1.12x)"
    )
    print(
        f"EdgePC:   E2E {edgepc.end_to_end_speedup:.2f}x on the same "
        "workload"
    )

    # Shapes: big FC win, real grouping penalty, small net E2E gain.
    assert 1.4 < result.feature_speedup < 4.0
    assert 1.5 < result.grouping_slowdown < 6.0
    assert 1.0 <= result.end_to_end_speedup < 1.5
    # EdgePC beats delayed aggregation end-to-end on this workload.
    assert edgepc.end_to_end_speedup > result.end_to_end_speedup
