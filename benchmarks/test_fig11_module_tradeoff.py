"""Fig. 11: neighbor-search speedup vs false-neighbor ratio per
PointNet++ module.

Paper result: module 1 (the first SA level, operating on the densest
cloud) shows both the largest speedup from the Morton window search
and the lowest false neighbor ratio — making it the right (and only)
module to approximate.
"""

import numpy as np
from conftest import print_header

from repro.core import EdgePCConfig, MortonNeighborSearch, structurize
from repro.datasets import ScanNetLike
from repro.neighbors import (
    false_neighbor_ratio,
    knn,
    pairwise_operation_count,
)
from repro.sampling import farthest_point_sample

K = 16
LEVELS = (2048, 512, 128, 32)  # per-module input sizes (scaled W2)


def test_fig11_per_module_tradeoff(benchmark, rng):
    cloud = ScanNetLike(num_clouds=1, points_per_cloud=2048, seed=0)[
        0
    ].xyz
    config = EdgePCConfig.paper_default()

    # Build the SA hierarchy the exact pipeline would see.
    level_points = [cloud]
    for size in LEVELS[1:]:
        idx = farthest_point_sample(
            level_points[-1], size, start_index=0
        )
        level_points.append(level_points[-1][idx])

    rows = []
    for module, points in enumerate(level_points):
        n = len(points)
        queries = np.arange(min(n, 256))
        order = structurize(points)
        window = min(n, config.window_for(K))
        searcher = MortonNeighborSearch(K, window)
        approx = searcher.search(points, queries, order)
        exact = knn(points[queries], points, K)
        fnr = false_neighbor_ratio(approx, exact)
        speedup = pairwise_operation_count(
            len(queries), n
        ) / searcher.operation_count(len(queries))
        rows.append((module, n, speedup, fnr))

    big_order = structurize(level_points[0])
    benchmark(
        lambda: MortonNeighborSearch(
            K, config.window_for(K)
        ).search(level_points[0], np.arange(256), big_order)
    )

    print_header(
        "Fig. 11: per-module NS speedup vs false neighbor ratio "
        "(PointNet++ levels)"
    )
    print(f"{'Module':<8}{'points':>8}{'speedup':>10}{'FNR':>8}")
    for module, n, speedup, fnr in rows:
        print(
            f"layer{module + 1:<3}{n:>8}{speedup:>9.1f}x"
            f"{fnr * 100:>7.1f}%"
        )

    speedups = [r[2] for r in rows]
    fnrs = [r[3] for r in rows]
    # Shape: layer 1 has by far the largest speedup — the property
    # that makes it the (only) module worth approximating.  Its FNR is
    # in the usable band.  (The paper additionally reports layer 1
    # having the *lowest* FNR; on our synthetic clouds the FNR is
    # roughly flat across modules — see EXPERIMENTS.md.)
    assert speedups[0] == max(speedups)
    assert speedups[-1] < speedups[0] / 4
    assert fnrs[0] < 0.6
