"""Fig. 13: the headline performance/energy results on W1-W6.

Paper results:
(a) sample + neighbor search accelerated 3.68x on average
    (up to 5.21x on W1; 3.44x on W2; ~3-4x on the DGCNN workloads);
(b) 1.55x average end-to-end speedup, up to 2.25x with tensor cores
    (W6);
(c) 33% average energy saving, +13% more from tensor cores
    (W1 38%, W2 31%, W3 16%).
"""

from conftest import print_header

from repro.analysis import format_comparison_row, geometric_mean
from repro.runtime import compare
from repro.workloads import standard_workloads, trace


def test_fig13_performance_and_energy(
    benchmark, profiler, baseline_config, edgepc_config,
    tensorcore_config,
):
    specs = standard_workloads()

    def run_all():
        reports = {}
        for name, spec in specs.items():
            base = trace(spec, baseline_config)
            opt = trace(spec, edgepc_config)
            tc = trace(spec, tensorcore_config)
            reports[name] = (
                compare(
                    profiler, base, baseline_config, opt, edgepc_config
                ),
                compare(
                    profiler, base, baseline_config, tc,
                    tensorcore_config,
                ),
            )
        return reports

    reports = benchmark(run_all)

    print_header(
        "Fig. 13: S+N / E2E speedup and energy saving per workload"
    )
    for name, (plain, tc) in reports.items():
        print(format_comparison_row(name, plain))
        print(
            f"{'':6}with tensor cores: "
            f"E2E {tc.end_to_end_speedup:5.2f}x | "
            f"energy saved {tc.energy_saving_fraction * 100:5.1f}%"
        )

    sn_speedups = [r.sample_neighbor_speedup for r, _ in reports.values()]
    e2e_speedups = [r.end_to_end_speedup for r, _ in reports.values()]
    tc_speedups = [t.end_to_end_speedup for _, t in reports.values()]
    energy = [r.energy_saving_fraction for r, _ in reports.values()]
    tc_energy = [t.energy_saving_fraction for _, t in reports.values()]

    avg_sn = sum(sn_speedups) / len(sn_speedups)
    avg_e2e = sum(e2e_speedups) / len(e2e_speedups)
    avg_energy = sum(energy) / len(energy)
    print(
        f"\nAverages: S+N {avg_sn:.2f}x (paper 3.68x) | "
        f"E2E {avg_e2e:.2f}x (paper 1.55x) | "
        f"energy saved {avg_energy * 100:.1f}% (paper 33%) | "
        f"geomean S+N {geometric_mean(sn_speedups):.2f}x"
    )

    # (a) S+N speedup: average lands near the paper's 3.68x, every
    # workload in the winning band.
    assert 3.0 < avg_sn < 4.5
    assert all(2.5 < s < 6.0 for s in sn_speedups)
    # (b) E2E speedup: everything > 1, average in band, tensor cores
    # strictly better everywhere, largest-point workloads gain most.
    assert all(s > 1.1 for s in e2e_speedups)
    assert 1.3 < avg_e2e < 2.3
    assert all(t > p for t, p in zip(tc_speedups, e2e_speedups))
    assert max(tc_speedups) > 2.0
    # (c) Energy: every workload saves energy; average in band; the
    # DGCNN reuse workloads save a *smaller* fraction than their
    # latency gain suggests (memory-power penalty, paper's W3 case).
    assert all(0.05 < e < 0.7 for e in energy)
    assert 0.25 < avg_energy < 0.5
    assert all(t > p for t, p in zip(tc_energy, energy))
    w3_plain, _ = reports["W3"]
    w3_latency_saving = 1.0 - 1.0 / w3_plain.end_to_end_speedup
    assert w3_plain.energy_saving_fraction < w3_latency_saving + 0.02


def test_w2_variable_batch_frames(
    benchmark, profiler, baseline_config, edgepc_config
):
    """W2's per-frame batch variability (Sec. 6.2: batches of 4-41,
    mean 14).  Frame latency scales with batch size in both configs,
    and EdgePC wins on every frame."""
    import numpy as np

    from repro.workloads import scan_batch_sizes, trace_with_batch

    spec = standard_workloads()["W2"]
    sizes = scan_batch_sizes(12, np.random.default_rng(3))

    def frame_latencies(config):
        return np.array(
            [
                profiler.breakdown(
                    trace_with_batch(spec, config, int(b)), config
                ).total_s
                for b in sizes
            ]
        )

    base = frame_latencies(baseline_config)
    opt = benchmark.pedantic(
        lambda: frame_latencies(edgepc_config), rounds=1, iterations=1
    )

    print_header(
        "W2 per-frame latency under the scan batch distribution"
    )
    print(f"{'frame':>6}{'batch':>7}{'baseline':>11}{'EdgePC':>10}")
    for i, (b, tb, to) in enumerate(zip(sizes, base, opt)):
        print(
            f"{i:>6}{b:>7}{tb * 1e3:>9.0f}ms{to * 1e3:>8.0f}ms"
        )

    assert (opt < base).all()
    # Latency tracks batch size (monotone over the sorted frames).
    order = np.argsort(sizes)
    assert (np.diff(base[order]) >= -1e-9).all()
