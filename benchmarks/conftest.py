"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section: it prints the same rows/series the paper reports
(so the output can be diffed against EXPERIMENTS.md) and asserts the
*shape* of the result — who wins, by roughly what factor, where the
crossovers fall.  Wall-clock timings of the real NumPy kernels run
under pytest-benchmark; simulated edge-GPU latencies come from
``repro.runtime``.
"""

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.runtime import PipelineProfiler


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture(scope="session")
def profiler():
    return PipelineProfiler()


@pytest.fixture(scope="session")
def baseline_config():
    return EdgePCConfig.baseline()


@pytest.fixture(scope="session")
def edgepc_config():
    return EdgePCConfig.paper_default()


@pytest.fixture(scope="session")
def tensorcore_config():
    return EdgePCConfig.paper_with_tensor_cores()


@pytest.fixture
def rng():
    return np.random.default_rng(2023)
