"""Fig. 9: per-layer down/up-sampling latency in PointNet++(s).

Paper result (PointNet++ on ScanNet): the first SA module's
down-sampling layer and the last FP module's up-sampling layer
dominate the sampling latency; applying the Morton sampler to those
two layers accelerates them by 10.6x and 5.2x respectively.
"""

from conftest import print_header

from repro.analysis import format_layer_latencies
from repro.runtime import CostModel, xavier
from repro.workloads import standard_workloads, trace

SAMPLE_OPS_DOWN = ("fps", "morton_gen", "morton_sort", "uniform_pick")
SAMPLE_OPS_UP = ("interp_exact", "interp_morton")


def _layer_times(recorder, ops, cost):
    times = {}
    for event in recorder:
        if event.op in ops:
            times[event.layer] = times.get(event.layer, 0.0) + (
                cost.price(event)
            )
    return times


def test_fig9_per_layer_sampling_latency(
    benchmark, baseline_config, edgepc_config
):
    spec = standard_workloads()["W2"]  # PointNet++(s) / ScanNet
    cost = CostModel(xavier())

    base_trace = trace(spec, baseline_config)
    opt_trace = benchmark(lambda: trace(spec, edgepc_config))

    base_down = _layer_times(base_trace, SAMPLE_OPS_DOWN, cost)
    opt_down = _layer_times(opt_trace, SAMPLE_OPS_DOWN, cost)
    base_up = _layer_times(base_trace, SAMPLE_OPS_UP, cost)
    opt_up = _layer_times(opt_trace, SAMPLE_OPS_UP, cost)

    print_header(
        "Fig. 9: PointNet++(s)/ScanNet per-layer sampling latency "
        "(ms per batch)"
    )
    print(f"{'Layer':<8}{'baseline':>12}{'EdgePC':>12}{'speedup':>10}")
    for layer in sorted(base_down):
        b, o = base_down[layer], opt_down[layer]
        print(
            f"SA{layer} dn{b * 1e3:>11.2f}{o * 1e3:>12.2f}"
            f"{b / o:>9.1f}x"
        )
    for layer in sorted(base_up):
        b, o = base_up[layer], opt_up[layer]
        print(
            f"FP{layer} up{b * 1e3:>11.2f}{o * 1e3:>12.2f}"
            f"{b / o:>9.1f}x"
        )

    # Shape 1: SA1's down-sample and FP4's up-sample dominate their
    # stages in the baseline.
    assert base_down[0] == max(base_down.values())
    assert base_up[3] == max(base_up.values())
    # Shape 2: the optimized layers hit the paper's speedups
    # (10.6x down, 5.2x up) within a modest band.
    down_speedup = base_down[0] / opt_down[0]
    up_speedup = base_up[3] / opt_up[3]
    print(
        f"\nSA1 down speedup {down_speedup:.1f}x (paper 10.6x), "
        f"FP4 up speedup {up_speedup:.1f}x (paper 5.2x)"
    )
    assert 7.0 < down_speedup < 16.0
    assert 3.5 < up_speedup < 8.0
    # Shape 3: unoptimized layers are untouched.
    for layer in (1, 2, 3):
        assert opt_down[layer] == base_down[layer]
    for layer in (0, 1, 2):
        assert opt_up[layer] == base_up[layer]
