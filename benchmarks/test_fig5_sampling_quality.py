"""Fig. 5 + Sec. 4.2: sampling quality and cost on the Bunny model.

Paper results:
- FPS on the raw cloud and uniform sampling on the Morton-sorted cloud
  both cover the model well; uniform sampling on the *raw* cloud is
  badly uneven (dense lines / sparse holes).
- On the Xavier, FPS for 40256 -> 1024 points takes ~81.7 ms while
  uniform sampling takes ~1 ms.

This benchmark reports both the quality metrics (coverage radius, mean
coverage distance, density uniformity) and the *measured wall-clock*
of the real NumPy kernels, plus the simulated edge-GPU latencies.
"""

import numpy as np
from conftest import print_header

from repro.core import MortonSampler
from repro.datasets import bunny_like
from repro.nn.recorder import STAGE_SAMPLE, StageEvent
from repro.runtime import CostModel, xavier
from repro.sampling import (
    coverage_radius,
    density_uniformity,
    farthest_point_sample,
    mean_coverage_distance,
    uniform_sample,
)

NUM_POINTS = 40256
NUM_SAMPLES = 1024


def test_fig5_sampling_quality(benchmark):
    cloud = bunny_like(NUM_POINTS, seed=0).xyz

    fps_idx = farthest_point_sample(cloud, NUM_SAMPLES, start_index=0)
    raw_idx = uniform_sample(cloud, NUM_SAMPLES)
    sampler = MortonSampler()
    morton_idx = benchmark(
        lambda: sampler.sample(cloud, NUM_SAMPLES).indices
    )

    rows = {
        "FPS on raw PC (a)": fps_idx,
        "uniform on raw PC (b)": raw_idx,
        "uniform on Morton PC (c)": morton_idx,
    }
    print_header(
        "Fig. 5: Bunny (40256 pts) down-sampled to 1024 "
        "(lower coverage radius / CV = better)"
    )
    print(
        f"{'Sampler':<28}{'cov. radius':>12}{'mean cov.':>11}"
        f"{'density CV':>12}"
    )
    metrics = {}
    for name, idx in rows.items():
        cov = coverage_radius(cloud, idx)
        mean_cov = mean_coverage_distance(cloud, idx)
        cv = density_uniformity(cloud, idx)
        metrics[name] = (cov, mean_cov, cv)
        print(f"{name:<28}{cov:>12.4f}{mean_cov:>11.4f}{cv:>12.3f}")

    fps_m = metrics["FPS on raw PC (a)"]
    raw_m = metrics["uniform on raw PC (b)"]
    morton_m = metrics["uniform on Morton PC (c)"]

    # Shape: FPS best, Morton-uniform close behind, raw-uniform worst.
    assert fps_m[0] < morton_m[0] < raw_m[0]
    assert morton_m[2] < raw_m[2]  # Morton far more even than raw
    assert morton_m[0] < 3.0 * fps_m[0]  # near-FPS coverage

    # Simulated device latency (the paper's 81.7 ms vs ~1 ms numbers).
    cost = CostModel(xavier())
    fps_time = cost.price(
        StageEvent(
            STAGE_SAMPLE, "fps", 0,
            {"n_points": NUM_POINTS, "n_samples": NUM_SAMPLES,
             "batch": 1},
        )
    )
    uniform_time = cost.price(
        StageEvent(
            STAGE_SAMPLE, "uniform_pick", 0,
            {"n_samples": NUM_SAMPLES, "batch": 1},
        )
    )
    morton_time = uniform_time + sum(
        cost.price(StageEvent(STAGE_SAMPLE, op, 0, counts))
        for op, counts in (
            ("morton_gen", {"n_points": NUM_POINTS, "batch": 1}),
            ("morton_sort", {"n_points": NUM_POINTS, "batch": 1}),
        )
    )
    print(
        f"\nSimulated Xavier latency: FPS {fps_time * 1e3:.1f} ms "
        f"(paper ~81.7 ms) | raw uniform {uniform_time * 1e3:.3f} ms "
        f"(paper ~1 ms) | full Morton pipeline "
        f"{morton_time * 1e3:.2f} ms"
    )
    assert abs(fps_time - 81.7e-3) / 81.7e-3 < 0.2
    assert uniform_time < 1e-3
    # The full Morton pipeline (codes + sort + pick) still beats FPS
    # comfortably at Bunny scale; its advantage widens further on the
    # smaller per-layer clouds inside the CNNs (Fig. 9's 10.6x).
    assert morton_time < fps_time / 2
