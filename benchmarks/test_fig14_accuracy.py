"""Fig. 14a: inference accuracy of the retrained EdgePC models.

Paper result: retraining the CNNs with the Morton approximations in
the loop keeps the accuracy drop within 2% of the baseline; using the
pretrained weights *without* retraining loses much more.

The models/datasets are scaled down (NumPy training), but the three-way
comparison is exactly the paper's: baseline -> weight-swap ->
retrained.  Two tasks run: shape classification (DGCNN(c) on the
ModelNet-like set, W3's task) and semantic segmentation (PointNet++(s)
on the S3DIS-like rooms, W1's task).
"""

import numpy as np
from conftest import print_header

from repro.core import EdgePCConfig
from repro.datasets import (
    ModelNetLike,
    S3DISLike,
    make_batches,
    train_test_split,
)
from repro.nn import DGCNNClassifier, PointNet2Segmentation, SAConfig
from repro.train import retrain_comparison


def _classification_experiment():
    ds = ModelNetLike(
        num_clouds=48, points_per_cloud=128, num_classes=4, seed=0
    )
    train_idx, test_idx = train_test_split(ds, 0.25)
    train_b = make_batches(ds, 8, indices=train_idx)
    test_b = make_batches(ds, 4, indices=test_idx, drop_last=False)

    def build(config):
        return DGCNNClassifier(
            num_classes=4, k=8, ec_channels=((16,), (16,), (32,)),
            emb_channels=32, head_hidden=32, dropout=0.2,
            edgepc=config, rng=np.random.default_rng(0),
        )

    return retrain_comparison(
        build,
        EdgePCConfig.baseline(),
        EdgePCConfig.paper_default(),
        train_b, test_b, epochs=10, lr=5e-3,
    )


def _segmentation_experiment():
    ds = S3DISLike(num_clouds=12, points_per_cloud=256, seed=1)
    train_idx, test_idx = train_test_split(ds, 0.25)
    train_b = make_batches(
        ds, 3, indices=train_idx, per_point_labels=True
    )
    test_b = make_batches(
        ds, 3, indices=test_idx, per_point_labels=True, drop_last=False
    )
    sa = (
        SAConfig(0.5, 8, 0.4, (16, 16, 32)),
        SAConfig(0.5, 8, 0.8, (32, 32, 64)),
    )

    def build(config):
        return PointNet2Segmentation(
            num_classes=6, sa_configs=sa, edgepc=config,
            head_hidden=32, dropout=0.0,
            rng=np.random.default_rng(0),
        )

    # Segmentation is the accuracy-sensitive task, so the EdgePC
    # config uses the larger search window the paper recommends for
    # that regime (Sec. 6.2's "flexibility" paragraph).
    return retrain_comparison(
        build,
        EdgePCConfig.baseline(),
        EdgePCConfig(
            sample_layers={0}, upsample_layers={1},
            neighbor_layers={0}, window_multiplier=4,
        ),
        train_b, test_b, epochs=30, lr=8e-3,
    )


def test_fig14_accuracy(benchmark):
    classification = benchmark.pedantic(
        _classification_experiment, rounds=1, iterations=1
    )
    segmentation = _segmentation_experiment()

    print_header(
        "Fig. 14a: accuracy — baseline vs weight-swap vs retrained "
        "(paper: retrained drop <= 2%)"
    )
    print(
        f"{'Task':<22}{'baseline':>10}{'swap':>8}{'retrained':>11}"
        f"{'drop':>8}"
    )
    for name, result in (
        ("classification (W3)", classification),
        ("segmentation (W1)", segmentation),
    ):
        print(
            f"{name:<22}{result.baseline_accuracy:>10.3f}"
            f"{result.approx_pretrained_accuracy:>8.3f}"
            f"{result.approx_retrained_accuracy:>11.3f}"
            f"{result.drop_after_retraining * 100:>7.1f}%"
        )

    # Classification: the full paper story at small scale.
    assert classification.baseline_accuracy > 0.85
    assert classification.drop_without_retraining > 0.15
    assert classification.drop_after_retraining <= 0.10
    # Segmentation: retrained approximate model stays close to the
    # baseline.  The paper's full-scale drop is <= 2%; at this tiny
    # scale (12 rooms x 256 points) the gap is noisier, so we allow a
    # wider band while still requiring recovery over the weight swap.
    assert segmentation.baseline_accuracy > 0.45
    assert segmentation.drop_after_retraining <= 0.12
    assert (
        segmentation.approx_retrained_accuracy
        > segmentation.approx_pretrained_accuracy
    )
    # Retraining must recover accuracy relative to the naive swap.
    assert (
        classification.approx_retrained_accuracy
        > classification.approx_pretrained_accuracy
    )
