"""Fig. 15 + Sec. 5.1.3/6.1.3 sensitivity studies.

(a) Search window size: enlarging W from k toward 16k drives the false
    neighbor ratio down (paper: toward ~5%) while the NS-stage speedup
    falls from N/k toward N/W.
(b) Number of optimized layers: gains saturate quickly and eventually
    *reverse* — structurizing the small deeper levels pays a sort
    launch each time while removing ever-cheaper exact kernels (the
    paper's Sec. 5.2.3 overhead argument; its Fig. 15b reports only a
    slight improvement past the first module, at significant accuracy
    cost).
(c) Morton code width: FNR falls as the code widens and saturates by
    32 bits, while memory grows linearly (N*a/8 bytes).
"""

import numpy as np
from conftest import print_header

from repro.core import EdgePCConfig
from repro.core.dse import explore_code_bits, explore_window_sizes
from repro.datasets import ScanNetLike
from repro.runtime import compare
from repro.workloads import standard_workloads, trace


def test_fig15a_window_sensitivity(benchmark, rng):
    cloud = ScanNetLike(num_clouds=1, points_per_cloud=4096, seed=0)[
        0
    ].xyz
    queries = rng.choice(4096, 512, replace=False)

    points = benchmark.pedantic(
        lambda: explore_window_sizes(
            cloud, k=16,
            multipliers=(1, 2, 4, 8, 16, 32),
            query_indices=queries,
        ),
        rounds=1, iterations=1,
    )

    print_header(
        "Fig. 15a: false neighbor ratio vs search window "
        "(ScanNet-like, k=16)"
    )
    print(f"{'W':>6}{'W/k':>6}{'FNR':>9}{'NS speedup':>12}")
    for p in points:
        print(
            f"{p.window:>6}{p.window_multiplier:>6.0f}"
            f"{p.false_neighbor_ratio * 100:>8.1f}%"
            f"{p.search_speedup:>11.1f}x"
        )

    fnrs = [p.false_neighbor_ratio for p in points]
    speedups = [p.search_speedup for p in points]
    # Monotone trade-off, with the wide end approaching the paper's
    # few-percent regime.
    assert fnrs == sorted(fnrs, reverse=True)
    assert speedups == sorted(speedups, reverse=True)
    assert fnrs[-1] < 0.15
    assert speedups[0] == 4096 / 16


def test_fig15b_layer_count_sensitivity(
    benchmark, profiler, baseline_config
):
    spec = standard_workloads()["W2"]
    base = benchmark(lambda: trace(spec, baseline_config))

    print_header(
        "Fig. 15b: S+N speedup vs number of optimized SA/FP modules"
    )
    speedups = []
    for num_layers in (1, 2, 3, 4):
        layers = frozenset(range(num_layers))
        up_layers = frozenset(
             4 - 1 - layer for layer in range(num_layers)
        )
        config = EdgePCConfig(
            sample_layers=layers,
            upsample_layers=up_layers,
            neighbor_layers=layers,
        )
        report = compare(
            profiler, base, baseline_config,
            trace(spec, config), config,
        )
        speedups.append(report.sample_neighbor_speedup)
        print(
            f"{num_layers} layer(s): "
            f"S+N {report.sample_neighbor_speedup:5.2f}x"
        )

    # Shape: gains saturate after two modules and reverse at four —
    # per-layer structurization overhead eats the shrinking returns
    # (the accuracy cost of deeper approximation is measured
    # separately in the Fig. 14 benchmark).
    assert speedups[1] > speedups[0]
    saturation_gain = (speedups[2] - speedups[1]) / speedups[1]
    print(
        f"\nlayer 3 adds only {saturation_gain * 100:.0f}% over "
        f"layer 2; layer 4 reverses to {speedups[3]:.2f}x"
    )
    assert saturation_gain < 0.15
    assert speedups[3] < speedups[2]


def test_fig15c_code_bits_sensitivity(benchmark, rng):
    cloud = ScanNetLike(num_clouds=1, points_per_cloud=2048, seed=0)[
        0
    ].xyz
    queries = rng.choice(2048, 256, replace=False)
    points = benchmark.pedantic(
        lambda: explore_code_bits(
            cloud, k=16,
            code_bits_options=(12, 18, 24, 32, 48, 63),
            query_indices=queries,
        ),
        rounds=1, iterations=1,
    )

    print_header(
        "Sec. 6.1.3: Morton code width vs FNR vs memory "
        "(paper default: 32 bits)"
    )
    print(f"{'bits':>6}{'bits/axis':>11}{'memory':>10}{'FNR':>9}")
    for p in points:
        print(
            f"{p.code_bits:>6}{p.bits_per_axis:>11}"
            f"{p.memory_bytes / 1024:>9.1f}K"
            f"{p.false_neighbor_ratio * 100:>8.1f}%"
        )

    by_bits = {p.code_bits: p for p in points}
    # Memory is exactly linear in the width.
    assert by_bits[32].memory_bytes == 2048 * 4
    assert by_bits[63].memory_bytes > by_bits[12].memory_bytes * 5
    # FNR saturates by 32 bits: widening to 63 barely moves it.
    assert (
        by_bits[32].false_neighbor_ratio
        <= by_bits[12].false_neighbor_ratio + 0.02
    )
    assert abs(
        by_bits[63].false_neighbor_ratio
        - by_bits[32].false_neighbor_ratio
    ) < 0.05
