"""Fig. 6: false neighbor ratio of pure index selection (W = k).

Paper result: picking the k index-adjacent points of the Morton order
instead of running ball query / kNN yields a false neighbor ratio as
low as ~23% (dataset- and searcher-dependent), before any window
enlargement.
"""

import numpy as np
from conftest import print_header

from repro.core import MortonNeighborSearch, structurize
from repro.datasets import (
    KITTILike,
    ModelNetLike,
    S3DISLike,
    ScanNetLike,
    ShapeNetPartLike,
)
from repro.neighbors import ball_query, false_neighbor_ratio, knn

K = 16
NUM_QUERIES = 512


def _dataset_clouds():
    return {
        "ModelNet40": ModelNetLike(
            num_clouds=1, points_per_cloud=1024, seed=0
        )[0].xyz,
        "ShapeNet": ShapeNetPartLike(
            num_clouds=1, points_per_cloud=2048, seed=0
        )[0].xyz,
        "S3DIS": S3DISLike(num_clouds=1, points_per_cloud=4096, seed=0)[
            0
        ].xyz,
        "ScanNet": ScanNetLike(
            num_clouds=1, points_per_cloud=4096, seed=0
        )[0].xyz,
        # Not in the paper's Fig. 6 — outdoor generalization check.
        "KITTI-like": KITTILike(
            num_clouds=1, points_per_cloud=4096, seed=0
        )[0].xyz,
    }


def test_fig6_false_neighbor_ratio(benchmark, rng):
    clouds = _dataset_clouds()
    searcher = MortonNeighborSearch(K)  # W = k: pure index pick

    results = {}
    for name, cloud in clouds.items():
        order = structurize(cloud)
        queries = rng.choice(len(cloud), NUM_QUERIES, replace=False)
        approx = searcher.search(cloud, queries, order)
        exact_knn = knn(cloud[queries], cloud, K)
        # Radius sized so the ball holds about k points, which makes
        # the scan-order ball query comparable to kNN ground truth.
        kth = np.sort(
            np.linalg.norm(
                cloud[queries, None, :] - cloud[exact_knn], axis=2
            )[:, -1]
        )
        radius = float(np.median(kth)) * 1.2
        exact_bq = ball_query(cloud[queries], cloud, radius, K)
        results[name] = {
            "kNN": false_neighbor_ratio(approx, exact_knn),
            "ball query": false_neighbor_ratio(approx, exact_bq),
        }

    # Benchmark the approximate searcher on the largest cloud.
    big = clouds["ScanNet"]
    order = structurize(big)
    benchmark(lambda: searcher.search(big, np.arange(1024), order))

    print_header(
        "Fig. 6: false neighbor ratio at W = k "
        "(paper: as low as ~23%)"
    )
    print(f"{'Dataset':<14}{'vs kNN':>10}{'vs ball query':>16}")
    for name, row in results.items():
        print(
            f"{name:<14}{row['kNN'] * 100:>9.1f}%"
            f"{row['ball query'] * 100:>15.1f}%"
        )

    all_fnr = [v for row in results.values() for v in row.values()]
    # Shape: the index pick recovers roughly half the true neighbors
    # everywhere (far from the ~94% FNR a random pick of k out of N
    # would give).  The paper's best case reaches 23%; our synthetic
    # clouds bottom out near 45% (see EXPERIMENTS.md).
    assert all(f < 0.70 for f in all_fnr), results
    assert min(all_fnr) < 0.55
    # Enlarging the window must cut FNR further (leads into Fig. 15a).
    wide = MortonNeighborSearch(K, 8 * K)
    cloud = clouds["ModelNet40"]
    order = structurize(cloud)
    queries = np.arange(NUM_QUERIES)
    fnr_narrow = false_neighbor_ratio(
        searcher.search(cloud, queries, order),
        knn(cloud[queries], cloud, K),
    )
    fnr_wide = false_neighbor_ratio(
        wide.search(cloud, queries, order),
        knn(cloud[queries], cloud, K),
    )
    assert fnr_wide < fnr_narrow
