"""Tests for the Morton sampler and up-sampler (repro.core.sampler)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampler import (
    MortonSampler,
    MortonUpsampler,
    exact_interpolate,
)
from repro.core.structurize import structurize
from repro.sampling import (
    coverage_radius,
    farthest_point_sample,
    uniform_sample,
)


class TestMortonSampler:
    def test_returns_requested_count(self, medium_cloud):
        result = MortonSampler().sample(medium_cloud, 128)
        assert len(result) == 128
        assert result.indices.shape == (128,)

    def test_indices_are_distinct(self, medium_cloud):
        result = MortonSampler().sample(medium_cloud, 256)
        assert len(set(result.indices.tolist())) == 256

    def test_sampled_ranks_are_strided(self, medium_cloud):
        result = MortonSampler().sample(medium_cloud, 64)
        expected = np.arange(64) * 1024 // 64
        assert np.array_equal(result.sampled_ranks, expected)

    def test_reuses_precomputed_order(self, medium_cloud):
        order = structurize(medium_cloud)
        result = MortonSampler().sample(medium_cloud, 64, order=order)
        assert result.order is order

    def test_rejects_mismatched_order(self, medium_cloud, small_cloud):
        order = structurize(small_cloud)
        with pytest.raises(ValueError):
            MortonSampler().sample(medium_cloud, 64, order=order)

    def test_sample_all_points(self, small_cloud):
        result = MortonSampler().sample(small_cloud, len(small_cloud))
        assert sorted(result.indices.tolist()) == list(
            range(len(small_cloud))
        )

    def test_sample_one_point(self, small_cloud):
        result = MortonSampler().sample(small_cloud, 1)
        assert len(result) == 1

    def test_coverage_beats_raw_uniform(self, medium_cloud):
        """The Fig. 5 claim, quantified: Morton-uniform sampling covers
        an irregular cloud better than raw-uniform sampling."""
        morton_idx = MortonSampler().sample(medium_cloud, 64).indices
        raw_idx = uniform_sample(medium_cloud, 64)
        assert coverage_radius(
            medium_cloud, morton_idx
        ) < coverage_radius(medium_cloud, raw_idx)

    def test_coverage_within_factor_of_fps(self, medium_cloud):
        """Morton sampling approximates FPS coverage within a small
        constant factor (it is the paper's drop-in replacement)."""
        morton_idx = MortonSampler().sample(medium_cloud, 64).indices
        fps_idx = farthest_point_sample(medium_cloud, 64, start_index=0)
        ratio = coverage_radius(medium_cloud, morton_idx) / (
            coverage_radius(medium_cloud, fps_idx)
        )
        assert ratio < 3.5

    def test_deterministic(self, medium_cloud):
        a = MortonSampler().sample(medium_cloud, 100).indices
        b = MortonSampler().sample(medium_cloud, 100).indices
        assert np.array_equal(a, b)

    def test_invalid_code_bits_rejected(self):
        with pytest.raises(ValueError):
            MortonSampler(code_bits=1)

    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(4, 200),
        frac=st.floats(0.05, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_indices_always_valid_property(self, seed, n, frac):
        pts = np.random.default_rng(seed).normal(size=(n, 3))
        count = max(1, int(n * frac))
        result = MortonSampler().sample(pts, count)
        assert len(result) == count
        assert result.indices.min() >= 0
        assert result.indices.max() < n
        assert len(set(result.indices.tolist())) == count


class TestMortonUpsampler:
    def test_candidate_slots_shape(self, medium_cloud):
        result = MortonSampler().sample(medium_cloud, 64)
        slots = MortonUpsampler().candidate_sample_slots(
            len(medium_cloud), result
        )
        assert slots.shape == (1024, 4)
        assert slots.min() >= 0
        assert slots.max() < 64

    def test_candidate_offsets_exclude_own_block(self):
        """Per Sec. 5.1.2 the 4 candidates are at strides -2, -1, +1,
        +2 around the owning block (clamped at the edges)."""
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(100, 3))
        result = MortonSampler().sample(pts, 10)
        slots = MortonUpsampler().candidate_sample_slots(100, result)
        # Point at sorted rank 55 owns block 5 -> slots {3, 4, 6, 7}.
        assert slots[55].tolist() == [3, 4, 6, 7]

    def test_weights_are_convex(self, medium_cloud):
        result = MortonSampler().sample(medium_cloud, 64)
        _, weights = MortonUpsampler().interpolation_weights(
            medium_cloud, result
        )
        assert weights.shape == (1024, 3)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert (weights >= 0).all()

    def test_interpolate_shape_and_order(self, medium_cloud, rng):
        result = MortonSampler().sample(medium_cloud, 64)
        feats = rng.normal(size=(64, 8))
        out = MortonUpsampler().interpolate(medium_cloud, result, feats)
        assert out.shape == (1024, 8)

    def test_interpolate_constant_features(self, medium_cloud):
        """Interpolating a constant field must return that constant."""
        result = MortonSampler().sample(medium_cloud, 64)
        feats = np.full((64, 2), 7.5)
        out = MortonUpsampler().interpolate(medium_cloud, result, feats)
        assert np.allclose(out, 7.5)

    def test_interpolate_approximates_exact(self, medium_cloud, rng):
        """The approximation tracks exact 3-NN interpolation for a
        smooth feature field (coordinates as features)."""
        result = MortonSampler().sample(medium_cloud, 128)
        feats = medium_cloud[result.indices]  # smooth: xyz itself
        approx = MortonUpsampler().interpolate(
            medium_cloud, result, feats
        )
        exact = exact_interpolate(medium_cloud, result.indices, feats)
        err = np.linalg.norm(approx - exact, axis=1)
        scale = np.linalg.norm(exact, axis=1).mean()
        assert err.mean() / scale < 0.25

    def test_rejects_wrong_feature_rows(self, medium_cloud, rng):
        result = MortonSampler().sample(medium_cloud, 64)
        with pytest.raises(ValueError):
            MortonUpsampler().interpolate(
                medium_cloud, result, rng.normal(size=(63, 4))
            )

    def test_rejects_bad_anchor_config(self):
        with pytest.raises(ValueError):
            MortonUpsampler(num_candidates=2, num_anchors=3)


class TestExactInterpolate:
    def test_recovers_value_at_sample(self, small_cloud, rng):
        idx = np.arange(0, 256, 4)
        feats = rng.normal(size=(64, 5))
        out = exact_interpolate(small_cloud, idx, feats)
        # At a sampled point, the nearest sample is itself (distance 0)
        # and inverse-distance weighting collapses to that value.
        assert np.allclose(out[idx[0]], feats[0])

    def test_constant_field(self, small_cloud):
        idx = np.arange(0, 256, 8)
        feats = np.full((32, 3), 2.0)
        out = exact_interpolate(small_cloud, idx, feats)
        assert np.allclose(out, 2.0)

    def test_fewer_samples_than_anchors(self, small_cloud, rng):
        idx = np.array([0, 9])
        feats = rng.normal(size=(2, 4))
        out = exact_interpolate(small_cloud, idx, feats)
        assert out.shape == (256, 4)
