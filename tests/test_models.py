"""Tests for the PointNet++ and DGCNN models (repro.nn.pointnet2 /
dgcnn) and the stage recorder."""

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.nn import (
    DGCNNClassifier,
    DGCNNSegmentation,
    PointNet2Classifier,
    PointNet2Segmentation,
    SAConfig,
    StageRecorder,
    cross_entropy,
)
from repro.nn.recorder import (
    STAGE_FEATURE,
    STAGE_NEIGHBOR,
    STAGE_SAMPLE,
    NullRecorder,
    StageEvent,
)

# Radii sized for unnormalized N(0, 1) test clouds, where typical
# nearest-neighbor distances are ~1 — too-small balls would degenerate
# to self-neighbors and zero relative coordinates.
TINY_SA = (
    SAConfig(0.5, 4, 1.5, (8, 8)),
    SAConfig(0.5, 4, 3.0, (16, 16)),
)


def tiny_pn2(edgepc, num_classes=3, seed=0):
    return PointNet2Segmentation(
        num_classes=num_classes,
        sa_configs=TINY_SA,
        edgepc=edgepc,
        head_hidden=8,
        rng=np.random.default_rng(seed),
    )


def tiny_dgcnn_cls(edgepc, num_classes=4, seed=0):
    return DGCNNClassifier(
        num_classes=num_classes,
        k=4,
        ec_channels=((8,), (8,), (16,)),
        emb_channels=16,
        head_hidden=8,
        edgepc=edgepc,
        rng=np.random.default_rng(seed),
    )


class TestRecorder:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            StageEvent("bogus", "fps", 0)
        with pytest.raises(ValueError):
            StageEvent(STAGE_SAMPLE, "fps", -1)

    def test_record_and_filter(self):
        rec = StageRecorder()
        rec.record(STAGE_SAMPLE, "fps", 0, n_points=10)
        rec.record(STAGE_NEIGHBOR, "knn", 1, n_queries=5)
        assert len(rec) == 2
        assert len(rec.events_for_stage(STAGE_SAMPLE)) == 1
        assert len(rec.events_for_layer(1)) == 1
        assert rec.op_names() == ["fps", "knn"]

    def test_clear(self):
        rec = StageRecorder()
        rec.record(STAGE_SAMPLE, "fps", 0)
        rec.clear()
        assert len(rec) == 0

    def test_null_recorder_drops(self):
        rec = NullRecorder()
        rec.record(STAGE_SAMPLE, "fps", 0)
        assert len(rec) == 0


class TestPointNet2Segmentation:
    def test_output_shape(self, rng):
        model = tiny_pn2(EdgePCConfig.baseline())
        logits = model(rng.normal(size=(2, 32, 3)))
        assert logits.shape == (2, 32, 3)

    def test_edgepc_config_changes_ops(self, rng):
        xyz = rng.normal(size=(1, 32, 3))
        rec_base = StageRecorder()
        tiny_pn2(EdgePCConfig.baseline())(xyz, recorder=rec_base)
        rec_opt = StageRecorder()
        cfg = EdgePCConfig(
            sample_layers={0}, upsample_layers={1}, neighbor_layers={0}
        )
        tiny_pn2(cfg)(xyz, recorder=rec_opt)
        assert "fps" in rec_base.op_names()
        assert "morton_sort" in rec_opt.op_names()
        assert "morton_window" in rec_opt.op_names()
        assert "interp_morton" in rec_opt.op_names()

    def test_baseline_records_all_stages(self, rng):
        rec = StageRecorder()
        tiny_pn2(EdgePCConfig.baseline())(
            rng.normal(size=(1, 32, 3)), recorder=rec
        )
        stages = {e.stage for e in rec}
        assert STAGE_SAMPLE in stages
        assert STAGE_NEIGHBOR in stages
        assert STAGE_FEATURE in stages

    def test_gradients_reach_all_parameters(self, rng):
        model = tiny_pn2(EdgePCConfig.paper_default())
        logits = model(rng.normal(size=(1, 32, 3)))
        loss = cross_entropy(logits, rng.integers(0, 3, (1, 32)))
        loss.backward()
        with_grad = sum(
            1 for p in model.parameters() if p.grad is not None
        )
        assert with_grad == sum(1 for _ in model.parameters())

    def test_same_weights_different_configs(self, rng):
        """Weights transfer between baseline and EdgePC variants (the
        retraining experiment relies on this)."""
        base = tiny_pn2(EdgePCConfig.baseline(), seed=1)
        approx = tiny_pn2(EdgePCConfig.paper_default(), seed=2)
        approx.load_state_dict(base.state_dict())
        for (_, a), (_, b) in zip(
            base.named_parameters(), approx.named_parameters()
        ):
            assert np.array_equal(a.data, b.data)

    def test_deterministic_forward(self, rng):
        xyz = rng.normal(size=(1, 32, 3))
        model = tiny_pn2(EdgePCConfig.paper_default())
        model.eval()
        a = model(xyz).data
        b = model(xyz).data
        assert np.array_equal(a, b)

    def test_with_input_features(self, rng):
        from repro.nn.autograd import Tensor

        model = PointNet2Segmentation(
            num_classes=3,
            in_channels=2,
            sa_configs=TINY_SA,
            head_hidden=8,
            rng=np.random.default_rng(0),
        )
        out = model(
            rng.normal(size=(1, 32, 3)),
            Tensor(rng.normal(size=(1, 32, 2))),
        )
        assert out.shape == (1, 32, 3)

    def test_rejects_bad_xyz(self, rng):
        with pytest.raises(ValueError):
            tiny_pn2(EdgePCConfig.baseline())(rng.normal(size=(32, 3)))


class TestPointNet2Classifier:
    def test_output_shape(self, rng):
        model = PointNet2Classifier(
            num_classes=5,
            sa_configs=TINY_SA,
            head_hidden=8,
            rng=np.random.default_rng(0),
        )
        logits = model(rng.normal(size=(3, 32, 3)))
        assert logits.shape == (3, 5)

    def test_trains_one_step(self, rng):
        from repro.nn import Adam

        model = PointNet2Classifier(
            num_classes=2,
            sa_configs=TINY_SA,
            head_hidden=8,
            rng=np.random.default_rng(0),
        )
        opt = Adam(model.parameters(), lr=1e-2)
        xyz = rng.normal(size=(2, 32, 3))
        labels = np.array([0, 1])
        losses = []
        for _ in range(5):
            opt.zero_grad()
            loss = cross_entropy(model(xyz), labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestDGCNN:
    def test_classifier_shape(self, rng):
        model = tiny_dgcnn_cls(EdgePCConfig.baseline())
        assert model(rng.normal(size=(2, 32, 3))).shape == (2, 4)

    def test_segmentation_shape(self, rng):
        model = DGCNNSegmentation(
            num_classes=5,
            k=4,
            ec_channels=((8,), (8,)),
            emb_channels=16,
            head_hidden=8,
            rng=np.random.default_rng(0),
        )
        assert model(rng.normal(size=(2, 32, 3))).shape == (2, 32, 5)

    def test_reuse_policy_in_trace(self, rng):
        rec = StageRecorder()
        tiny_dgcnn_cls(EdgePCConfig.paper_default())(
            rng.normal(size=(1, 32, 3)), recorder=rec
        )
        neighbor_ops = [
            e.op for e in rec.events_for_stage(STAGE_NEIGHBOR)
        ]
        # EC0 morton (gen, sort, window), EC1 reuse, EC2 knn.
        assert neighbor_ops == [
            "morton_gen", "morton_sort", "morton_window", "reuse", "knn",
        ]

    def test_baseline_computes_every_module(self, rng):
        rec = StageRecorder()
        tiny_dgcnn_cls(EdgePCConfig.baseline())(
            rng.normal(size=(1, 32, 3)), recorder=rec
        )
        neighbor_ops = [
            e.op for e in rec.events_for_stage(STAGE_NEIGHBOR)
        ]
        assert neighbor_ops == ["knn", "knn", "knn"]

    def test_feature_space_knn_dim_recorded(self, rng):
        rec = StageRecorder()
        tiny_dgcnn_cls(EdgePCConfig.baseline())(
            rng.normal(size=(1, 32, 3)), recorder=rec
        )
        knn_events = [e for e in rec if e.op == "knn"]
        assert knn_events[0].counts["dim"] == 3
        assert knn_events[1].counts["dim"] == 8  # EC1 feature space

    def test_gradients_flow(self, rng):
        model = tiny_dgcnn_cls(EdgePCConfig.paper_default())
        loss = cross_entropy(
            model(rng.normal(size=(1, 32, 3))), np.array([1])
        )
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_rejects_bad_input(self, rng):
        with pytest.raises(ValueError):
            tiny_dgcnn_cls(EdgePCConfig.baseline())(
                rng.normal(size=(2, 32, 2))
            )
