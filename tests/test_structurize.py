"""Tests for Morton structurization (repro.core.structurize)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.structurize import structuredness, structurize
from repro.geometry import BoundingBox


class TestStructurize:
    def test_permutation_is_valid(self, small_cloud):
        order = structurize(small_cloud)
        assert sorted(order.permutation.tolist()) == list(
            range(len(small_cloud))
        )

    def test_ranks_invert_permutation(self, small_cloud):
        order = structurize(small_cloud)
        assert np.array_equal(
            order.ranks[order.permutation], np.arange(len(order))
        )

    def test_sorted_codes_ascending(self, small_cloud):
        order = structurize(small_cloud)
        sorted_codes = order.sorted_codes
        assert (np.diff(sorted_codes) >= 0).all()

    def test_paper_example_small(self):
        """Sec. 5.1.2's worked example: 5 points, grid size 1, origin 0.

        Coordinates chosen to decode to the paper's Morton codes
        {185, 23, 114, 0, 67}; sorting gives indexes {3, 1, 4, 2, 0}.
        """
        from repro.core import morton

        cells = morton.decode(np.array([185, 23, 114, 0, 67]))
        points = cells.astype(float) + 0.5  # inside each unit voxel
        box = BoundingBox(np.zeros(3), np.full(3, 8.0))
        order = structurize(points, code_bits=9, bounding_box=box)
        assert np.array_equal(order.codes, [185, 23, 114, 0, 67])
        assert order.permutation.tolist() == [3, 1, 4, 2, 0]

    def test_sorted_points_view(self, small_cloud):
        order = structurize(small_cloud)
        sorted_pts = order.sorted_points(small_cloud)
        assert np.array_equal(
            sorted_pts[0], small_cloud[order.permutation[0]]
        )

    def test_rank_and_index_are_inverse(self, small_cloud):
        order = structurize(small_cloud)
        idx = np.array([3, 77, 200])
        assert np.array_equal(
            order.original_index_of(order.rank_of(idx)), idx
        )

    def test_memory_overhead(self, small_cloud):
        order = structurize(small_cloud, code_bits=32)
        assert order.memory_overhead_bytes == len(small_cloud) * 4

    def test_shared_bounding_box(self, small_cloud):
        box = BoundingBox(np.full(3, -2.0), np.full(3, 2.0))
        order = structurize(small_cloud, bounding_box=box)
        assert len(order) == len(small_cloud)

    def test_deterministic(self, small_cloud):
        a = structurize(small_cloud)
        b = structurize(small_cloud)
        assert np.array_equal(a.permutation, b.permutation)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            structurize(np.empty((0, 3)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            structurize(np.zeros((5, 2)))

    def test_identical_points_stable(self):
        pts = np.ones((10, 3))
        order = structurize(pts)
        # Stable sort keeps the input order for equal codes.
        assert order.permutation.tolist() == list(range(10))

    def test_consecutive_ranks_are_spatially_close(self, medium_cloud):
        """The locality property the whole paper rests on: points
        adjacent in Morton order are much closer in space than points
        adjacent in a random order."""
        value = structuredness(
            structurize(medium_cloud), medium_cloud
        )
        assert value < 0.5

    def test_structuredness_of_tiny_cloud(self):
        pts = np.zeros((2, 3))
        assert structuredness(structurize(pts), pts) == 1.0

    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(2, 300),
        code_bits=st.sampled_from([12, 24, 32, 63]),
    )
    @settings(max_examples=40, deadline=None)
    def test_permutation_property(self, seed, n, code_bits):
        pts = np.random.default_rng(seed).normal(size=(n, 3))
        order = structurize(pts, code_bits)
        assert sorted(order.permutation.tolist()) == list(range(n))
        assert (np.diff(order.sorted_codes) >= 0).all()

    def test_wider_codes_refine_ordering(self, medium_cloud):
        """More code bits -> equal or finer spatial ordering quality."""
        coarse = structuredness(
            structurize(medium_cloud, 12), medium_cloud
        )
        fine = structuredness(
            structurize(medium_cloud, 48), medium_cloud
        )
        assert fine <= coarse + 0.05
