"""Tests for the autograd engine (repro.nn.autograd), including
numerical gradient checks on every op."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.autograd import (
    Tensor,
    concatenate,
    maximum,
    no_grad,
    stack,
    where,
)


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    g = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        g[i] = (hi - lo) / (2 * eps)
    return grad


def check_op(build, x0, tol=1e-5):
    """Compare autograd and numerical gradients for scalar build(x)."""
    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    num = numeric_grad(lambda a: build(Tensor(a)).item(), x0.copy())
    assert np.allclose(t.grad, num, atol=tol), (
        f"max err {np.abs(t.grad - num).max()}"
    )


class TestBasicOps:
    def test_add_grad(self, rng):
        check_op(lambda t: (t + 2.0).sum(), rng.normal(size=(3, 4)))

    def test_add_broadcast_grad(self, rng):
        bias = Tensor(rng.normal(size=4), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)))
        (x + bias).sum().backward()
        assert np.allclose(bias.grad, 3.0)

    def test_mul_grad(self, rng):
        check_op(lambda t: (t * t).sum(), rng.normal(size=(3, 4)))

    def test_sub_and_neg_grad(self, rng):
        check_op(lambda t: (1.0 - t - t).sum(), rng.normal(size=(5,)))

    def test_div_grad(self, rng):
        x0 = rng.uniform(1.0, 2.0, size=(4,))
        check_op(lambda t: (3.0 / t).sum(), x0)

    def test_pow_grad(self, rng):
        x0 = rng.uniform(0.5, 2.0, size=(4,))
        check_op(lambda t: (t**3).sum(), x0)

    def test_matmul_grad(self, rng):
        w = rng.normal(size=(4, 2))
        check_op(
            lambda t: (t @ Tensor(w)).sum(), rng.normal(size=(3, 4))
        )

    def test_matmul_grad_rhs(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (x @ w).sum().backward()
        assert np.allclose(w.grad, x.data.sum(axis=0)[:, None])

    def test_batched_matmul_grad(self, rng):
        w = rng.normal(size=(2, 4, 2))
        check_op(
            lambda t: (t @ Tensor(w)).sum(),
            rng.normal(size=(2, 3, 4)),
        )

    def test_exp_log_grad(self, rng):
        x0 = rng.uniform(0.5, 2.0, size=(6,))
        check_op(lambda t: (t.exp() + t.log()).sum(), x0)

    def test_tanh_sigmoid_grad(self, rng):
        check_op(
            lambda t: (t.tanh() + t.sigmoid()).sum(),
            rng.normal(size=(6,)),
        )

    def test_relu_grad(self, rng):
        x0 = rng.normal(size=(20,))
        x0 = x0[np.abs(x0) > 1e-3][:10]  # avoid the kink
        check_op(lambda t: t.relu().sum(), x0)

    def test_leaky_relu_grad(self, rng):
        x0 = rng.normal(size=(20,))
        x0 = x0[np.abs(x0) > 1e-3][:10]
        check_op(lambda t: t.leaky_relu(0.2).sum(), x0)

    def test_sqrt_grad(self, rng):
        check_op(
            lambda t: t.sqrt().sum(), rng.uniform(0.5, 2.0, size=(5,))
        )


class TestReductions:
    def test_sum_axis_grad(self, rng):
        check_op(
            lambda t: (t.sum(axis=0) ** 2).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_sum_keepdims_grad(self, rng):
        check_op(
            lambda t: (t.sum(axis=1, keepdims=True) * t).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_mean_grad(self, rng):
        check_op(lambda t: (t.mean() ** 2), rng.normal(size=(3, 4)))

    def test_mean_axis_grad(self, rng):
        check_op(
            lambda t: (t.mean(axis=1) ** 2).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_max_grad_routes_to_argmax(self):
        x = Tensor(
            np.array([[1.0, 5.0, 2.0], [4.0, 0.0, 9.0]]),
            requires_grad=True,
        )
        x.max(axis=1).sum().backward()
        expected = np.array([[0, 1, 0], [0, 0, 1]], dtype=float)
        assert np.array_equal(x.grad, expected)

    def test_max_ties_route_once(self):
        x = Tensor(np.array([[3.0, 3.0, 1.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert x.grad.sum() == 1.0

    def test_min_grad(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.min(axis=1).sum().backward()
        assert np.array_equal(x.grad, [[1.0, 0.0, 0.0]])

    def test_max_keepdims_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 3)))
        assert x.max(axis=1, keepdims=True).shape == (2, 1, 3)


class TestShapeOps:
    def test_reshape_grad(self, rng):
        check_op(
            lambda t: (t.reshape(6, 2) ** 2).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_transpose_grad(self, rng):
        w = rng.normal(size=(3, 4))
        check_op(
            lambda t: (t.transpose(1, 0) * Tensor(w.T)).sum(),
            w.copy(),
        )

    def test_transpose_default_reverses(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_expand_dims_and_broadcast_grad(self, rng):
        def build(t):
            e = t.expand_dims(1).broadcast_to((3, 5, 4))
            return (e * e).sum()

        check_op(build, rng.normal(size=(3, 4)))

    def test_take_grad_scatter_adds(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        picked = x.take(np.array([0, 0, 2]))
        picked.sum().backward()
        assert np.array_equal(x.grad, [2.0, 0.0, 1.0])

    def test_take_2d_indices(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([[0, 1], [4, 4]])
        out = x.take(idx, axis=0)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        assert x.grad[4].sum() == pytest.approx(6.0)

    def test_take_axis1(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        out = x.take(np.array([1, 1, 3]), axis=1)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.array_equal(
            x.grad, [[0, 2, 0, 1, 0], [0, 2, 0, 1, 0]]
        )

    def test_take_rejects_float_indices(self, rng):
        with pytest.raises(TypeError):
            Tensor(rng.normal(size=(4,))).take(np.array([0.5]))

    def test_getitem_grad(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        x[(np.array([0, 0, 2]),)].sum().backward()
        assert x.grad[0].sum() == pytest.approx(6.0)
        assert x.grad[2].sum() == pytest.approx(3.0)
        assert x.grad[1].sum() == 0.0


class TestCombinators:
    def test_concatenate_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * out).sum().backward()
        assert np.allclose(a.grad, 2 * a.data)
        assert np.allclose(b.grad, 2 * b.data)

    def test_stack_grad(self, rng):
        tensors = [
            Tensor(rng.normal(size=(3,)), requires_grad=True)
            for _ in range(4)
        ]
        out = stack(tensors, axis=0)
        assert out.shape == (4, 3)
        out.sum().backward()
        for t in tensors:
            assert np.allclose(t.grad, 1.0)

    def test_maximum_grad(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        assert np.array_equal(a.grad, [0.0, 1.0])
        assert np.array_equal(b.grad, [1.0, 0.0])

    def test_where_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        assert np.array_equal(a.grad, [1.0, 0.0])
        assert np.array_equal(b.grad, [0.0, 1.0])


class TestEngine:
    def test_grad_accumulates_over_reuse(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (x + x + x).sum().backward()
        assert np.allclose(x.grad, 3.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a * b).sum().backward()
        # d/dx(12 x^2) = 24 x = 48.
        assert x.grad[0] == pytest.approx(48.0)

    def test_no_grad_blocks_graph(self, rng):
        with no_grad():
            x = Tensor(rng.normal(size=(3,)), requires_grad=True)
            y = (x * 2.0).sum()
        assert not y.requires_grad

    def test_backward_needs_scalar(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_with_explicit_grad(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (x * 2.0).backward(np.ones(3))
        assert np.allclose(x.grad, 2.0)

    def test_backward_on_constant_raises(self, rng):
        with pytest.raises(RuntimeError):
            Tensor(rng.normal(size=(3,))).sum().backward()

    def test_zero_grad(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (x * 1.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad

    def test_second_backward_accumulates(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = (x * 2.0).sum()
        y.backward()
        y2 = (x * 2.0).sum()
        y2.backward()
        assert np.allclose(x.grad, 4.0)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_mlp_gradient_property(self, seed):
        """Random 2-layer MLP: autograd matches numerical gradient."""
        gen = np.random.default_rng(seed)
        w1 = gen.normal(size=(4, 5))
        w2 = gen.normal(size=(5, 2))
        x0 = gen.normal(size=(3, 4))

        def build(t):
            h = (t @ Tensor(w1)).tanh()
            return ((h @ Tensor(w2)) ** 2).sum()

        check_op(build, x0, tol=1e-4)
