"""Tests for the runtime lock-order sanitizer (LockOrderWatchdog).

Unit-level: proxy bookkeeping (order edges, inversions, plain-Lock
re-entry refusal, Condition reentrancy and wait suspension, hold-time
metrics).  Integration-level: a threaded hammer drives a real
``ServerFleet`` — submitter threads racing the maintenance thread
while chaos kills and recovers a replica — under the watchdog, and
the observed acquisition order must neither invert at runtime nor
contradict the static CONC-502 lock-order graph.
"""

import threading

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.nn import PointNet2Segmentation, SAConfig
from repro.observability.metrics import MetricsRegistry
from repro.pipeline import EdgePCPipeline
from repro.robustness.lockwatch import (
    LockOrderViolation,
    LockOrderWatchdog,
    static_lock_order,
)
from repro.serving import (
    FleetConfig,
    HedgePolicy,
    RetryPolicy,
    ServerFleet,
    ServingConfig,
)

N_POINTS = 32


def _pipeline(seed=0):
    model = PointNet2Segmentation(
        num_classes=3,
        sa_configs=(SAConfig(0.5, 4, 1.5, (8, 8)),),
        edgepc=EdgePCConfig.paper_default(),
        head_hidden=8,
        rng=np.random.default_rng(seed),
    )
    return EdgePCPipeline(model)


class TestWatchdogUnit:
    def test_consistent_order_is_clean(self):
        wd = LockOrderWatchdog(static_edges=[("A", "B")])
        a = wd.wrap_lock(threading.Lock(), "A")
        b = wd.wrap_lock(threading.Lock(), "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        report = wd.report()
        assert report.edges == [("A", "B", 3)]
        assert report.violations == []
        assert report.contradictions == []
        wd.check()  # does not raise

    def test_inversion_is_a_violation(self):
        wd = LockOrderWatchdog()
        a = wd.wrap_lock(threading.Lock(), "A")
        b = wd.wrap_lock(threading.Lock(), "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        report = wd.report()
        assert len(report.violations) == 1
        assert "inversion" in report.violations[0]
        with pytest.raises(LockOrderViolation):
            wd.check()

    def test_contradiction_against_static_graph(self):
        # Static graph: A before B (via a path through M).  Observing
        # B -> A at runtime contradicts it even though the exact
        # reverse edge was never declared.
        wd = LockOrderWatchdog(
            static_edges=[("A", "M"), ("M", "B")]
        )
        a = wd.wrap_lock(threading.Lock(), "A")
        b = wd.wrap_lock(threading.Lock(), "B")
        with b:
            with a:
                pass
        report = wd.report()
        assert len(report.contradictions) == 1
        assert report.violations == []
        with pytest.raises(LockOrderViolation):
            wd.check()

    def test_plain_lock_reentry_refuses_instead_of_deadlocking(self):
        wd = LockOrderWatchdog()
        lock = wd.wrap_lock(threading.Lock(), "L")
        lock.acquire()
        with pytest.raises(LockOrderViolation):
            lock.acquire()
        lock.release()
        assert len(wd.report().violations) == 1

    def test_condition_reentry_and_wait_are_clean(self):
        wd = LockOrderWatchdog()
        cond = wd.wrap_condition(threading.Condition(), "C")
        state = {"ready": False}

        def producer():
            with cond:
                state["ready"] = True
                cond.notify_all()

        with cond:
            with cond:  # reentrant: no violation, no self-edge
                pass
            thread = threading.Thread(target=producer)
            thread.start()
            assert cond.wait_for(
                lambda: state["ready"], timeout=5.0
            )
        thread.join()
        report = wd.report()
        assert report.violations == []
        assert report.edges == []

    def test_metrics_record_acquisitions_and_holds(self):
        registry = MetricsRegistry()
        wd = LockOrderWatchdog(metrics=registry)
        lock = wd.wrap_lock(threading.Lock(), "L")
        with lock:
            pass
        assert (
            registry.counter(
                "lockwatch_acquisitions_total", lock="L"
            ).value
            == 1
        )
        histogram = registry.histogram(
            "lockwatch_hold_seconds", lock="L"
        )
        assert histogram.count == 1

    def test_wrapping_is_idempotent(self):
        wd = LockOrderWatchdog()
        lock = wd.wrap_lock(threading.Lock(), "L")
        assert wd.wrap_lock(lock, "L") is lock
        cond = wd.wrap_condition(threading.Condition(), "C")
        assert wd.wrap_condition(cond, "C") is cond


class TestStaticGraphExport:
    def test_static_lock_order_covers_the_serving_stack(self):
        edges = static_lock_order()
        before = {a for a, _ in edges}
        assert "RequestQueue.condition" in before
        # The graph the watchdog validates against must be acyclic.
        assert not {(b, a) for a, b in edges} & set(edges)


class TestThreadedHammer:
    """Real threads + chaos under the sanitizer: zero violations."""

    def test_fleet_hammer_has_no_order_violations(
        self, rng, lockwatch_sanitizer
    ):
        # Under REPRO_LOCKWATCH=1 the session sanitizer already wraps
        # every serving lock at construction; wrapping is idempotent,
        # so a second watchdog would observe nothing.  Assert against
        # whichever watchdog actually owns the proxies.
        registry = MetricsRegistry()
        watchdog = lockwatch_sanitizer or LockOrderWatchdog(
            static_edges=static_lock_order(), metrics=registry
        )
        fleet = ServerFleet(
            [_pipeline(seed=0) for _ in range(3)],
            config=FleetConfig(
                retry=RetryPolicy(
                    max_attempts=4, base_backoff_s=0.005
                ),
                hedge=HedgePolicy(min_delay_s=0.001),
            ),
            serving_config=ServingConfig(
                max_batch_size=4, max_wait_ms=5.0, workers=1
            ),
        )
        watchdog.instrument_fleet(fleet)
        clouds = [rng.random((N_POINTS, 3)) for _ in range(12)]
        requests = []
        requests_lock = threading.Lock()

        def submitter(offset):
            for index in range(offset, len(clouds), 2):
                try:
                    request = fleet.submit(
                        clouds[index], tenant=f"tenant-{index % 4}"
                    )
                except Exception:
                    continue
                with requests_lock:
                    requests.append(request)

        with fleet:
            threads = [
                threading.Thread(target=submitter, args=(offset,))
                for offset in range(2)
            ]
            for thread in threads:
                thread.start()
            fleet.kill_replica(0)
            for thread in threads:
                thread.join()
            fleet.recover_replica(0)
            for request in requests:
                try:
                    request.future.result(timeout=15.0)
                except Exception:
                    pass  # chaos losses are fine; order is not
        report = watchdog.report()
        assert report.violations == []
        assert report.contradictions == []
        assert sum(report.acquisitions.values()) > 0
        # Whatever order edges the run produced, none may invert.
        observed = {(a, b) for a, b, _ in report.edges}
        assert not {(b, a) for a, b in observed} & observed
        watchdog.check()  # the loud-failure path stays quiet
