"""Tests for the (1+eps) Z-order approximate NN baseline
(repro.neighbors.zorder_ann) — the paper's [12] comparison point."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.structurize import structurize
from repro.neighbors import ZOrderApproxNN, knn


class TestZOrderApproxNN:
    def test_exact_at_eps_zero(self, rng):
        pts = rng.random((400, 3))
        ann = ZOrderApproxNN(pts, eps=0.0)
        for q in rng.random((20, 3)):
            approx = set(ann.query(q, 6).tolist())
            exact = set(knn(q[None], pts, 6)[0].tolist())
            assert approx == exact

    def test_error_bound_respected(self, rng):
        """The k-th returned distance never exceeds (1+eps) times the
        true k-th distance — the guarantee EdgePC trades away."""
        pts = rng.random((500, 3))
        for eps in (0.5, 2.0):
            ann = ZOrderApproxNN(pts, eps=eps)
            for q in rng.random((15, 3)):
                approx = ann.query(q, 8)
                exact = knn(q[None], pts, 8)[0]
                d_approx = np.linalg.norm(pts[approx[-1]] - q)
                d_exact = np.linalg.norm(pts[exact[-1]] - q)
                assert d_approx <= (1 + eps) * d_exact + 1e-9

    def test_results_sorted_by_distance(self, rng):
        pts = rng.random((200, 3))
        ann = ZOrderApproxNN(pts)
        q = rng.random(3)
        out = ann.query(q, 5)
        d = np.linalg.norm(pts[out] - q, axis=1)
        assert (np.diff(d) >= -1e-12).all()

    def test_larger_eps_scans_less(self, rng):
        pts = rng.random((1000, 3))
        tight = ZOrderApproxNN(pts, eps=0.0)
        loose = ZOrderApproxNN(pts, eps=2.0)
        tight_total = loose_total = 0
        for q in rng.random((10, 3)):
            tight.query(q, 8)
            tight_total += tight.last_scanned
            loose.query(q, 8)
            loose_total += loose.last_scanned
        assert loose_total <= tight_total

    def test_self_query(self, rng):
        pts = rng.random((100, 3))
        ann = ZOrderApproxNN(pts, eps=0.0)
        assert ann.query(pts[42], 1)[0] == 42

    def test_query_batch(self, rng):
        pts = rng.random((100, 3))
        ann = ZOrderApproxNN(pts)
        out = ann.query_batch(rng.random((4, 3)), 3)
        assert out.shape == (4, 3)

    def test_reuses_order(self, rng):
        pts = rng.random((100, 3))
        order = structurize(pts)
        ann = ZOrderApproxNN(pts, order=order)
        assert ann.order is order

    def test_rejects_bad_eps(self, rng):
        with pytest.raises(ValueError):
            ZOrderApproxNN(rng.random((10, 3)), eps=-0.1)

    def test_rejects_bad_k(self, rng):
        ann = ZOrderApproxNN(rng.random((10, 3)))
        with pytest.raises(ValueError):
            ann.query(np.zeros(3), 0)
        with pytest.raises(ValueError):
            ann.query(np.zeros(3), 11)

    def test_rejects_mismatched_order(self, rng):
        order = structurize(rng.random((50, 3)))
        with pytest.raises(ValueError):
            ZOrderApproxNN(rng.random((60, 3)), order=order)

    @given(seed=st.integers(0, 2**16), k=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_exactness_property(self, seed, k):
        gen = np.random.default_rng(seed)
        pts = gen.random((80, 3))
        ann = ZOrderApproxNN(pts, eps=0.0)
        q = gen.random(3)
        approx = set(ann.query(q, k).tolist())
        exact = set(knn(q[None], pts, k)[0].tolist())
        assert approx == exact
