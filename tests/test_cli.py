"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import bunny_like
from repro.geometry import io as pc_io


class TestWorkloadsCommand:
    def test_prints_all_rows(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("W1", "W2", "W3", "W4", "W5", "W6"):
            assert name in out


class TestProfileCommand:
    def test_single_workload(self, capsys):
        assert main(["profile", "--workload", "W3"]) == 0
        out = capsys.readouterr().out
        assert "W3" in out
        assert "sample+NS" in out

    def test_all_workloads(self, capsys):
        assert main(["profile"]) == 0
        assert capsys.readouterr().out.count("sample+NS") == 6

    def test_config_choices(self, capsys):
        assert main(
            ["profile", "--workload", "W1", "--config", "insights"]
        ) == 0

    def test_unknown_workload_fails(self):
        with pytest.raises(SystemExit):
            main(["profile", "--workload", "W9"])


class TestCompareCommand:
    def test_single_workload(self, capsys):
        assert main(["compare", "--workload", "W6"]) == 0
        out = capsys.readouterr().out
        assert "S+N" in out and "energy saved" in out

    def test_baseline_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--config", "baseline"])


class TestSampleCommand:
    @pytest.fixture
    def bunny_file(self, tmp_path):
        path = str(tmp_path / "bunny.ply")
        pc_io.save(bunny_like(1000), path)
        return path

    @pytest.mark.parametrize("method", ["fps", "morton", "uniform"])
    def test_methods(self, bunny_file, tmp_path, method, capsys):
        out_path = str(tmp_path / f"out_{method}.xyz")
        assert main(
            ["sample", bunny_file, out_path, "--method", method,
             "-n", "100"]
        ) == 0
        assert len(pc_io.load(out_path)) == 100

    def test_too_many_samples_fails(self, bunny_file, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["sample", bunny_file, str(tmp_path / "o.xyz"),
                 "-n", "99999"]
            )

    @pytest.fixture
    def stuck_sensor_file(self, tmp_path):
        """A duplicate-collapsed cloud (every return identical)."""
        from repro.geometry.points import PointCloud

        path = str(tmp_path / "stuck.xyz")
        pc_io.save(PointCloud(np.ones((200, 3))), path)
        return path

    def test_degenerate_input_rejected_by_default(
        self, stuck_sensor_file, tmp_path
    ):
        with pytest.raises(SystemExit, match="input rejected"):
            main(
                ["sample", stuck_sensor_file,
                 str(tmp_path / "o.xyz"), "-n", "10"]
            )

    def test_repair_policy_flags_and_continues(
        self, stuck_sensor_file, tmp_path, capsys
    ):
        out_path = str(tmp_path / "o.xyz")
        assert main(
            ["sample", stuck_sensor_file, out_path, "-n", "10",
             "--method", "uniform", "--validation-policy", "repair"]
        ) == 0
        out = capsys.readouterr().out
        assert "sanitized input" in out
        assert len(pc_io.load(out_path)) == 10

    def test_guard_passes_on_clean_cloud(
        self, bunny_file, tmp_path, capsys
    ):
        assert main(
            ["sample", bunny_file, str(tmp_path / "o.xyz"),
             "--method", "morton", "-n", "100", "--guard"]
        ) == 0
        assert "guard:" in capsys.readouterr().out

    def test_guard_falls_back_to_fps(
        self, bunny_file, tmp_path, capsys
    ):
        out_path = str(tmp_path / "o.xyz")
        assert main(
            ["sample", bunny_file, out_path, "--method", "morton",
             "-n", "100", "--guard", "--guard-threshold", "0.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "falling back to exact FPS" in out
        assert len(pc_io.load(out_path)) == 100
        # The fallback result is exactly what --method fps produces.
        fps_path = str(tmp_path / "fps.xyz")
        main(
            ["sample", bunny_file, fps_path, "--method", "fps",
             "-n", "100"]
        )
        assert np.allclose(
            pc_io.load(out_path).xyz, pc_io.load(fps_path).xyz
        )


class TestSweepCommand:
    def test_synthetic_sweep(self, capsys):
        assert main(
            ["sweep", "--points", "256", "--k", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "FNR" in out
        assert out.count("x") >= 5  # speedup column rows

    def test_sweep_from_file(self, tmp_path, capsys, rng):
        from repro.geometry.points import PointCloud

        path = str(tmp_path / "c.xyz")
        pc_io.save(PointCloud(rng.random((300, 3))), path)
        assert main(["sweep", "--input", path, "--k", "4"]) == 0


class TestReportCommand:
    def test_report_prints_all_sections(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "Fig. 13" in out
        assert "Table 2" in out
        assert "EdgePC" in out
        # Three config sections, each with six workloads + average.
        assert out.count("avg") == 3
