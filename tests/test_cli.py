"""Tests for the command-line interface (repro.cli)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import bunny_like
from repro.geometry import io as pc_io


class TestWorkloadsCommand:
    def test_prints_all_rows(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("W1", "W2", "W3", "W4", "W5", "W6"):
            assert name in out


class TestProfileCommand:
    def test_single_workload(self, capsys):
        assert main(["profile", "--workload", "W3"]) == 0
        out = capsys.readouterr().out
        assert "W3" in out
        assert "sample+NS" in out

    def test_all_workloads(self, capsys):
        assert main(["profile"]) == 0
        assert capsys.readouterr().out.count("sample+NS") == 6

    def test_config_choices(self, capsys):
        assert main(
            ["profile", "--workload", "W1", "--config", "insights"]
        ) == 0

    def test_unknown_workload_fails(self):
        with pytest.raises(SystemExit):
            main(["profile", "--workload", "W9"])


class TestCompareCommand:
    def test_single_workload(self, capsys):
        assert main(["compare", "--workload", "W6"]) == 0
        out = capsys.readouterr().out
        assert "S+N" in out and "energy saved" in out

    def test_baseline_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--config", "baseline"])


class TestSampleCommand:
    @pytest.fixture
    def bunny_file(self, tmp_path):
        path = str(tmp_path / "bunny.ply")
        pc_io.save(bunny_like(1000), path)
        return path

    @pytest.mark.parametrize("method", ["fps", "morton", "uniform"])
    def test_methods(self, bunny_file, tmp_path, method, capsys):
        out_path = str(tmp_path / f"out_{method}.xyz")
        assert main(
            ["sample", bunny_file, out_path, "--method", method,
             "-n", "100"]
        ) == 0
        assert len(pc_io.load(out_path)) == 100

    def test_too_many_samples_fails(self, bunny_file, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["sample", bunny_file, str(tmp_path / "o.xyz"),
                 "-n", "99999"]
            )

    @pytest.fixture
    def stuck_sensor_file(self, tmp_path):
        """A duplicate-collapsed cloud (every return identical)."""
        from repro.geometry.points import PointCloud

        path = str(tmp_path / "stuck.xyz")
        pc_io.save(PointCloud(np.ones((200, 3))), path)
        return path

    def test_degenerate_input_rejected_by_default(
        self, stuck_sensor_file, tmp_path
    ):
        with pytest.raises(SystemExit, match="input rejected"):
            main(
                ["sample", stuck_sensor_file,
                 str(tmp_path / "o.xyz"), "-n", "10"]
            )

    def test_repair_policy_flags_and_continues(
        self, stuck_sensor_file, tmp_path, capsys
    ):
        out_path = str(tmp_path / "o.xyz")
        assert main(
            ["sample", stuck_sensor_file, out_path, "-n", "10",
             "--method", "uniform", "--validation-policy", "repair"]
        ) == 0
        out = capsys.readouterr().out
        assert "sanitized input" in out
        assert len(pc_io.load(out_path)) == 10

    def test_guard_passes_on_clean_cloud(
        self, bunny_file, tmp_path, capsys
    ):
        assert main(
            ["sample", bunny_file, str(tmp_path / "o.xyz"),
             "--method", "morton", "-n", "100", "--guard"]
        ) == 0
        assert "guard:" in capsys.readouterr().out

    def test_guard_falls_back_to_fps(
        self, bunny_file, tmp_path, capsys
    ):
        out_path = str(tmp_path / "o.xyz")
        assert main(
            ["sample", bunny_file, out_path, "--method", "morton",
             "-n", "100", "--guard", "--guard-threshold", "0.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "falling back to exact FPS" in out
        assert len(pc_io.load(out_path)) == 100
        # The fallback result is exactly what --method fps produces.
        fps_path = str(tmp_path / "fps.xyz")
        main(
            ["sample", bunny_file, fps_path, "--method", "fps",
             "-n", "100"]
        )
        assert np.allclose(
            pc_io.load(out_path).xyz, pc_io.load(fps_path).xyz
        )


def _load_chrome_trace(path):
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["displayTimeUnit"] == "ms"
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    for event in doc["traceEvents"]:
        assert event["ph"] == "X"
        assert event["dur"] >= 0
    return doc


def _metric_names(path):
    with open(path) as fh:
        snapshot = json.load(fh)
    return {m["name"] for m in snapshot["metrics"]}


class TestSampleTelemetry:
    def test_synthetic_cloud_without_positionals(self, capsys):
        assert main(["sample", "-n", "64", "--points", "256"]) == 0
        out = capsys.readouterr().out
        assert "synthetic" in out
        assert "64" in out

    def test_acceptance_invocation_writes_artifacts(
        self, tmp_path, capsys
    ):
        """The ISSUE acceptance command: guarded synthetic sample with
        trace + metrics out, stage spans and guard/validation/streaming
        counters present."""
        trace_path = str(tmp_path / "trace.json")
        metrics_path = str(tmp_path / "metrics.json")
        assert main(
            ["sample", "--guard", "-n", "64", "--points", "512",
             "--trace-out", trace_path,
             "--metrics-out", metrics_path]
        ) == 0
        doc = _load_chrome_trace(trace_path)
        span_names = {e["name"] for e in doc["traceEvents"]}
        for required in (
            "sample", "neighbor_search", "grouping",
            "feature_compute", "pipeline.infer", "guard.infer",
            "demo.stream", "cli.sample",
        ):
            assert required in span_names, required
        names = _metric_names(metrics_path)
        for family in (
            "guard_probes_total", "guard_batches_served_total",
            "validation_repairs_total", "validation_rejects_total",
            "guard_rejections_total", "streaming_inserts_total",
            "streaming_evictions_total",
            "pipeline_stage_latency_seconds",
        ):
            assert family in names, family
        out = capsys.readouterr().out
        assert "guard: breaker states:" in out
        assert "degradation log" in out


class TestSweepCommand:
    def test_synthetic_sweep(self, capsys):
        assert main(
            ["sweep", "--points", "256", "--k", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "FNR" in out
        assert out.count("x") >= 5  # speedup column rows

    def test_sweep_from_file(self, tmp_path, capsys, rng):
        from repro.geometry.points import PointCloud

        path = str(tmp_path / "c.xyz")
        pc_io.save(PointCloud(rng.random((300, 3))), path)
        assert main(["sweep", "--input", path, "--k", "4"]) == 0


class TestReportCommand:
    def test_report_prints_all_sections(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "Fig. 13" in out
        assert "Table 2" in out
        assert "EdgePC" in out
        # Three config sections, each with six workloads + average.
        assert out.count("avg") == 3


class TestTraceCommand:
    def test_writes_all_artifacts(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        jsonl_path = str(tmp_path / "spans.jsonl")
        metrics_path = str(tmp_path / "metrics.json")
        report_path = str(tmp_path / "report.json")
        bench_path = str(tmp_path / "BENCH_observability.json")
        assert main(
            ["trace", "--workload", "all", "--config", "edgepc",
             "--trace-out", trace_path, "--jsonl-out", jsonl_path,
             "--metrics-out", metrics_path,
             "--report-out", report_path, "--bench-out", bench_path]
        ) == 0
        doc = _load_chrome_trace(trace_path)
        span_names = {e["name"] for e in doc["traceEvents"]}
        assert {"sample", "neighbor_search", "grouping",
                "feature_compute"} <= span_names
        with open(jsonl_path) as fh:
            lines = [json.loads(line) for line in fh]
        assert len(lines) == len(doc["traceEvents"])
        assert "pipeline_stage_latency_seconds" in _metric_names(
            metrics_path
        )
        with open(report_path) as fh:
            report = json.load(fh)
        assert report["meta"]["schema_version"] == 1
        assert report["meta"]["workload"] == "all"
        assert len(report["breakdowns"]) == 6
        with open(bench_path) as fh:
            bench = json.load(fh)
        assert bench["bench"] == "observability_smoke"
        assert bench["workloads"] == [
            "W1", "W2", "W3", "W4", "W5", "W6"
        ]
        assert bench["stage_medians_s"]["total_s"] > 0
        out = capsys.readouterr().out
        assert "median" in out

    def test_single_workload(self, tmp_path):
        trace_path = str(tmp_path / "t.json")
        assert main(
            ["trace", "--workload", "W2", "--trace-out", trace_path]
        ) == 0
        doc = _load_chrome_trace(trace_path)
        assert any(
            e["name"] == "workload.W2" for e in doc["traceEvents"]
        )


class TestMetricsCommand:
    def test_prometheus_stdout(self, capsys):
        assert main(["metrics", "--workload", "W1"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE pipeline_stage_latency_seconds histogram" in out
        assert 'stage="sample"' in out
        assert "pipeline_batches_total" in out

    def test_prometheus_parses_back(self, capsys):
        from repro.observability import parse_prometheus

        assert main(["metrics", "--workload", "W1"]) == 0
        values = parse_prometheus(capsys.readouterr().out)
        assert values  # at least one sample line parsed

    def test_json_to_file(self, tmp_path):
        out_path = str(tmp_path / "m.json")
        assert main(
            ["metrics", "--workload", "W1", "--format", "json",
             "--out", out_path]
        ) == 0
        assert "pipeline_energy_joules_total" in _metric_names(
            out_path
        )


class TestProfileCompareTelemetry:
    def test_profile_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.json")
        metrics_path = str(tmp_path / "m.json")
        assert main(
            ["profile", "--workload", "W1",
             "--trace-out", trace_path,
             "--metrics-out", metrics_path]
        ) == 0
        _load_chrome_trace(trace_path)
        assert "pipeline_stage_latency_seconds" in _metric_names(
            metrics_path
        )

    def test_compare_exports_speedup_gauges(self, tmp_path):
        metrics_path = str(tmp_path / "m.json")
        assert main(
            ["compare", "--workload", "W1",
             "--metrics-out", metrics_path]
        ) == 0
        names = _metric_names(metrics_path)
        assert "compare_end_to_end_speedup" in names
        assert "compare_energy_saving_fraction" in names
