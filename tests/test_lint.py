"""Tests for the repro.lint static-analysis engine.

Fixture policy: every rule has a known-bad file under
``tests/data/lint/bad/repro/...`` that must trigger it and a known-good
counterpart under ``tests/data/lint/good/repro/...`` that must stay
silent under *every* rule.  ``golden_findings.json`` pins the exact
findings (path/line/col/rule/severity/message/fingerprint) for the
whole bad tree.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    PARSE_RULE_ID,
    Baseline,
    all_rules,
    collect,
    derive_module,
    lint_file,
    lint_paths,
    lint_source,
    run_lint,
)

REPO = Path(__file__).resolve().parents[1]
DATA = REPO / "tests" / "data" / "lint"
BAD = DATA / "bad"
GOOD = DATA / "good"

# rule id -> (fixture file relative to bad/ and good/, findings in bad)
FIXTURES = {
    "PERF-101": ("repro/core/fake_kernel.py", 1),
    "PERF-102": ("repro/core/fake_kernel.py", 2),
    "PERF-103": ("repro/core/fake_kernel.py", 1),
    "PERF-104": ("repro/nn/batch_loops.py", 2),
    "PERF-105": ("repro/sampling/pairwise.py", 2),
    "DET-201": ("repro/sim/randomness.py", 3),
    "DET-202": ("repro/sim/timed.py", 2),
    "OBS-301": ("repro/sim/pipelines.py", 2),
    "OBS-302": ("repro/sim/metric_names.py", 4),
    "ROBUST-401": ("repro/sim/handlers.py", 2),
    "ROBUST-402": ("repro/geometry/contracts.py", 1),
    "ROBUST-403": ("repro/serving/retry_loops.py", 3),
}

# Serving-layer extensions of the OBS rules (PR 5): class suffixes
# Server/Batcher/Queue/Generator under repro.serving join OBS-301, and
# serving metrics must carry the serving_ prefix under OBS-302.
SERVING_FIXTURES = {
    "OBS-301": ("repro/serving/servers.py", 3),
    "OBS-302": ("repro/serving/metric_names.py", 3),
    # PR 7: terminal serving events must stay on the request trace.
    "OBS-303": ("repro/serving/trace_context.py", 3),
}

# Partition-layer extension of OBS-302 (PR 10): metrics emitted from
# repro.partition must carry the partition_ prefix.
PARTITION_FIXTURES = {
    "OBS-302": ("repro/partition/metric_names.py", 3),
}


class TestRuleRegistry:
    def test_every_fixture_rule_is_registered(self):
        registered = {rule.rule_id for rule in all_rules()}
        assert set(FIXTURES) <= registered

    def test_rules_have_metadata(self):
        for rule in all_rules():
            assert rule.rule_id
            assert rule.severity in ("warning", "error")
            assert rule.title
            assert rule.rationale

    def test_rule_ids_are_unique(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert len(ids) == len(set(ids))


class TestPerRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURES))
    def test_fires_on_bad_fixture(self, rule_id):
        relpath, expected = FIXTURES[rule_id]
        findings = lint_file(str(BAD / relpath))
        hits = [f for f in findings if f.rule == rule_id]
        assert len(hits) == expected

    @pytest.mark.parametrize("rule_id", sorted(FIXTURES))
    def test_silent_on_good_fixture(self, rule_id):
        relpath, _ = FIXTURES[rule_id]
        findings = lint_file(str(GOOD / relpath))
        assert findings == []

    def test_good_tree_is_fully_clean(self):
        assert lint_paths([str(GOOD)]) == []

    def test_pairwise_rule_only_applies_in_exact_packages(self):
        # PERF-105 polices the exact sampler / neighbor kernels; the
        # same broadcast elsewhere (e.g. repro.runtime) is not flagged.
        source = (BAD / "repro/sampling/pairwise.py").read_text()
        assert lint_source("repro/runtime/pairwise.py", source) == []


class TestServingFixtures:
    """PR-5 serving extensions of the OBS rules."""

    @pytest.mark.parametrize("rule_id", sorted(SERVING_FIXTURES))
    def test_fires_on_bad_fixture(self, rule_id):
        relpath, expected = SERVING_FIXTURES[rule_id]
        findings = lint_file(str(BAD / relpath))
        hits = [f for f in findings if f.rule == rule_id]
        assert len(hits) == expected

    @pytest.mark.parametrize("rule_id", sorted(SERVING_FIXTURES))
    def test_silent_on_good_fixture(self, rule_id):
        relpath, _ = SERVING_FIXTURES[rule_id]
        assert lint_file(str(GOOD / relpath)) == []

    def test_serving_suffixes_only_apply_inside_serving(self):
        # The same silent Server class outside repro.serving is not
        # held to OBS-301 (only *Pipeline is, repo-wide).
        source = (BAD / "repro/serving/servers.py").read_text()
        findings = lint_source("repro/sim/servers.py", source)
        assert findings == []

    def test_retry_loop_rule_only_applies_inside_serving(self):
        # ROBUST-403 is a serving-layer invariant: the same naked
        # retry loops elsewhere in the tree are not flagged.
        source = (BAD / "repro/serving/retry_loops.py").read_text()
        findings = lint_source("repro/sim/retry_loops.py", source)
        assert findings == []

    def test_trace_context_rule_only_applies_inside_serving(self):
        # OBS-303 guards the serving trace-propagation invariant; the
        # same future/RetryEvent patterns elsewhere are not flagged.
        source = (BAD / "repro/serving/trace_context.py").read_text()
        findings = lint_source("repro/sim/trace_context.py", source)
        assert findings == []

    def test_serving_prefix_only_required_inside_serving(self):
        source = (BAD / "repro/serving/metric_names.py").read_text()
        findings = lint_source("repro/sim/names_ok.py", source)
        # The unit-suffix finding stays; the prefix findings vanish.
        assert [f.rule for f in findings] == ["OBS-302"]
        assert "unit suffix" in findings[0].message


class TestPartitionFixtures:
    """PR-10 partition extension of the metric-name rule."""

    @pytest.mark.parametrize("rule_id", sorted(PARTITION_FIXTURES))
    def test_fires_on_bad_fixture(self, rule_id):
        relpath, expected = PARTITION_FIXTURES[rule_id]
        findings = lint_file(str(BAD / relpath))
        hits = [f for f in findings if f.rule == rule_id]
        assert len(hits) == expected

    @pytest.mark.parametrize("rule_id", sorted(PARTITION_FIXTURES))
    def test_silent_on_good_fixture(self, rule_id):
        relpath, _ = PARTITION_FIXTURES[rule_id]
        assert lint_file(str(GOOD / relpath)) == []

    def test_partition_prefix_only_required_inside_partition(self):
        source = (BAD / "repro/partition/metric_names.py").read_text()
        findings = lint_source("repro/sim/names_ok.py", source)
        # The unit-suffix finding stays; the prefix findings vanish.
        assert [f.rule for f in findings] == ["OBS-302"]
        assert "unit suffix" in findings[0].message


class TestGoldenFindings:
    def test_bad_tree_matches_golden(self, monkeypatch):
        monkeypatch.chdir(REPO)
        findings = lint_paths(["tests/data/lint/bad"])
        golden = json.loads((DATA / "golden_findings.json").read_text())
        assert [f.to_dict() for f in findings] == golden["findings"]


LOOPY = """\
import numpy as np

def slow(points):
    out = []
    for i in range(len(points)):
        for j in range(len(points)):
            out.append(i * j)
    return out
"""


class TestSuppressions:
    PATH = "repro/core/hot.py"

    def rules_in(self, source):
        return {f.rule for f in lint_source(self.PATH, source)}

    def test_unsuppressed_baseline(self):
        assert self.rules_in(LOOPY) == {"PERF-101", "PERF-102"}

    def test_same_line_suppression(self):
        src = LOOPY.replace(
            "for j in range(len(points)):",
            "for j in range(len(points)):  # repro: allow[PERF-101]",
        )
        assert self.rules_in(src) == {"PERF-102"}

    def test_line_above_suppression(self):
        src = LOOPY.replace(
            "            out.append(i * j)",
            "            # repro: allow[PERF-102]\n"
            "            out.append(i * j)",
        )
        assert self.rules_in(src) == {"PERF-101"}

    def test_allow_all_wildcard(self):
        src = "\n".join(
            line + "  # repro: allow[ALL]" if line.strip() else line
            for line in LOOPY.splitlines()
        )
        assert self.rules_in(src) == set()

    def test_comma_separated_ids(self):
        src = LOOPY.replace(
            "for j in range(len(points)):",
            "for j in range(len(points)):"
            "  # repro: allow[PERF-101, PERF-102]",
        )
        # Same line for PERF-101; line-above for the append below it.
        assert self.rules_in(src) == set()

    def test_unrelated_id_does_not_suppress(self):
        src = LOOPY.replace(
            "for j in range(len(points)):",
            "for j in range(len(points)):  # repro: allow[DET-201]",
        )
        assert self.rules_in(src) == {"PERF-101", "PERF-102"}


class TestEngine:
    def test_derive_module_src_layout(self):
        assert derive_module("src/repro/core/sort.py") == "repro.core.sort"

    def test_derive_module_fixture_layout(self):
        path = "tests/data/lint/bad/repro/sim/timed.py"
        assert derive_module(path) == "repro.sim.timed"

    def test_derive_module_package_init(self):
        assert derive_module("src/repro/lint/__init__.py") == "repro.lint"

    def test_derive_module_outside_repro(self):
        assert derive_module("scripts/bench.py") == "bench"

    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("repro/core/broken.py", "def f(:\n")
        assert len(findings) == 1
        assert findings[0].rule == PARSE_RULE_ID
        assert findings[0].severity == "error"

    def test_scoped_rules_ignore_other_packages(self):
        # Same loopy code outside repro.core/repro.nn: PERF stays quiet.
        assert lint_source("repro/datasets/maker.py", LOOPY) == []


class TestBaseline:
    def findings(self):
        return lint_file(str(BAD / "repro" / "core" / "fake_kernel.py"))

    def test_round_trip(self, tmp_path):
        findings = self.findings()
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings, note="fixture debt").save(
            str(path)
        )
        loaded = Baseline.load(str(path))
        assert loaded.note == "fixture debt"
        new, old = loaded.split(findings)
        assert new == []
        assert old == findings

    def test_duplicate_fingerprints_need_matching_counts(self):
        findings = self.findings()
        appends = [f for f in findings if f.rule == "PERF-102"]
        assert len(appends) == 2
        assert appends[0].fingerprint == appends[1].fingerprint
        baseline = Baseline.from_findings(appends[:1])
        new, old = baseline.split(appends)
        assert len(old) == 1
        assert len(new) == 1

    def test_unknown_findings_stay_new(self):
        baseline = Baseline.from_findings(self.findings())
        other = lint_file(str(BAD / "repro" / "sim" / "timed.py"))
        new, old = baseline.split(other)
        assert old == []
        assert new == other

    def test_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))


class TestRunner:
    def test_collect_with_baseline_grandfathers_everything(self, tmp_path):
        findings = lint_paths([str(BAD)])
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(str(baseline_path))
        report = collect([str(BAD)], str(baseline_path))
        assert report.findings == []
        assert len(report.grandfathered) == len(findings)

    def test_report_json_schema(self, tmp_path):
        out = tmp_path / "findings.json"
        code = run_lint(
            [str(BAD)],
            output_format="json",
            out=str(out),
            stream=open(str(tmp_path / "stdout.txt"), "w"),
        )
        assert code == 1  # the bad tree contains errors
        data = json.loads(out.read_text())
        assert data["schema_version"] == 1
        assert data["tool"] == "repro-lint"
        assert data["counts"]["error"] > 0
        assert data["counts"]["warning"] > 0
        total = data["counts"]["error"] + data["counts"]["warning"]
        assert len(data["findings"]) == total
        rule_ids = {rule["rule"] for rule in data["rules"]}
        assert set(FIXTURES) <= rule_ids

    def test_fail_on_threshold(self, tmp_path):
        sink = open(str(tmp_path / "out.txt"), "w")
        # Kernel fixture only emits warnings: passes at error threshold.
        kernel = str(BAD / "repro" / "core" / "fake_kernel.py")
        assert run_lint([kernel], fail_on="error", stream=sink) == 0
        assert run_lint([kernel], fail_on="warning", stream=sink) == 1

    def test_write_then_apply_baseline(self, tmp_path):
        sink = open(str(tmp_path / "out.txt"), "w")
        baseline = tmp_path / "baseline.json"
        assert (
            run_lint(
                [str(BAD)], write_baseline=str(baseline), stream=sink
            )
            == 0
        )
        assert (
            run_lint(
                [str(BAD)],
                baseline=str(baseline),
                fail_on="warning",
                stream=sink,
            )
            == 0
        )


class TestCli:
    def test_lint_good_tree_exits_zero(self, capsys):
        assert main(["lint", str(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_bad_tree_text_output(self, capsys):
        assert main(["lint", str(BAD), "--fail-on", "error"]) == 1
        out = capsys.readouterr().out
        assert "DET-201" in out
        assert "error" in out

    def test_lint_json_output(self, capsys):
        assert main(["lint", str(BAD), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["tool"] == "repro-lint"
        total = data["counts"]["error"] + data["counts"]["warning"]
        assert total == len(data["findings"])

    def test_lint_baseline_flow(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(["lint", str(BAD), "--write-baseline", str(baseline)])
            == 0
        )
        assert (
            main(
                [
                    "lint",
                    str(BAD),
                    "--baseline",
                    str(baseline),
                    "--fail-on",
                    "warning",
                ]
            )
            == 0
        )
        capsys.readouterr()


class TestSelfHosted:
    def test_src_tree_is_clean(self):
        """Acceptance gate: the shipped tree has zero findings."""
        assert lint_paths([str(REPO / "src")]) == []
