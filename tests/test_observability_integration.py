"""Telemetry wiring tests: pipeline, guard, streaming, trainer, and
the per-layer ordering guarantee the exporters rely on."""

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.core.reuse import NeighborCache
from repro.core.streaming import StreamingMortonOrder
from repro.geometry.bbox import BoundingBox
from repro.nn import DGCNNClassifier, PointNet2Segmentation, SAConfig
from repro.observability import MetricsRegistry, Tracer
from repro.pipeline import EdgePCPipeline
from repro.robustness.guard import GuardedPipeline, GuardThresholds
from repro.robustness.validate import ValidationPolicy
from repro.runtime import PipelineProfiler
from repro.workloads import standard_workloads, trace

TINY_SA = (
    SAConfig(0.5, 4, 1.5, (8, 8)),
    SAConfig(0.5, 4, 3.0, (16, 16)),
)


def _pn2(config=None):
    return PointNet2Segmentation(
        num_classes=3, sa_configs=TINY_SA,
        edgepc=config or EdgePCConfig.paper_default(),
        head_hidden=8, rng=np.random.default_rng(0),
    )


def _counter_value(registry, name, **labels):
    return registry.counter(name, **labels).value


class TestPipelineTelemetry:
    def test_infer_emits_spans_and_metrics(self, rng):
        tracer, registry = Tracer(), MetricsRegistry()
        pipeline = EdgePCPipeline(
            _pn2(), tracer=tracer, metrics=registry
        )
        pipeline.infer(rng.normal(size=(2, 64, 3)))
        names = [s.name for s in tracer.finished()]
        for expected in (
            "pipeline.infer", "pipeline.validate", "pipeline.forward",
            "sample", "neighbor_search", "grouping",
            "feature_compute",
        ):
            assert expected in names
        infer_span = next(
            s for s in tracer.finished() if s.name == "pipeline.infer"
        )
        assert infer_span.attrs["batch"] == 2
        assert infer_span.cost_s > 0
        assert _counter_value(registry, "pipeline_batches_total") == 1
        assert _counter_value(registry, "pipeline_clouds_total") == 2
        hist = registry.histogram(
            "pipeline_stage_latency_seconds", stage="sample"
        )
        assert hist.count == 1

    def test_validation_repair_counted(self, rng):
        registry = MetricsRegistry()
        pipeline = EdgePCPipeline(
            _pn2(), metrics=registry,
            validation=ValidationPolicy(on_invalid="repair"),
        )
        xyz = rng.normal(size=(1, 64, 3))
        xyz[0, 0] = np.nan
        pipeline.infer(xyz)
        assert (
            _counter_value(registry, "validation_repairs_total") == 1
        )
        assert (
            registry.counter(
                "validation_issues_total",
                kind="non_finite", action="dropped",
            ).value
            > 0
        )

    def test_validation_reject_counted(self, rng):
        from repro.robustness.validate import CloudValidationError

        registry = MetricsRegistry()
        pipeline = EdgePCPipeline(_pn2(), metrics=registry)
        xyz = rng.normal(size=(1, 64, 3))
        xyz[0, 0] = np.inf
        with pytest.raises(CloudValidationError):
            pipeline.infer(xyz)
        assert (
            _counter_value(registry, "validation_rejects_total") == 1
        )

    def test_reuse_hits_counted_for_dgcnn(self, rng):
        registry = MetricsRegistry()
        model = DGCNNClassifier(
            num_classes=4, k=4, ec_channels=((8,), (8,)),
            emb_channels=16, head_hidden=8,
            edgepc=EdgePCConfig.paper_default(),
            rng=np.random.default_rng(0),
        )
        pipeline = EdgePCPipeline(model, metrics=registry)
        pipeline.infer(rng.normal(size=(1, 32, 3)))
        assert (
            _counter_value(registry, "neighbor_reuse_hits_total") >= 1
        )

    def test_metrics_optional_by_default(self, rng):
        pipeline = EdgePCPipeline(_pn2())
        result = pipeline.infer(rng.normal(size=(1, 32, 3)))
        assert result.logits.shape == (1, 32, 3)


class TestGuardTelemetry:
    def _guarded(self, registry, tracer=None, **thresholds):
        pipeline = EdgePCPipeline(
            _pn2(), tracer=tracer, metrics=registry
        )
        return GuardedPipeline(
            pipeline,
            thresholds=GuardThresholds(**thresholds),
        )

    def test_guard_inherits_pipeline_telemetry(self):
        tracer, registry = Tracer(), MetricsRegistry()
        guard = self._guarded(registry, tracer=tracer)
        assert guard.tracer is tracer
        assert guard.metrics is registry

    def test_probes_and_served_batches_counted(self, rng):
        registry = MetricsRegistry()
        guard = self._guarded(registry)
        guard.infer(rng.normal(size=(1, 64, 3)))
        assert (
            _counter_value(registry, "guard_batches_served_total")
            == 1
        )
        assert (
            _counter_value(
                registry, "guard_probes_total", stage="sampling"
            )
            == 1
        )
        assert (
            registry.gauge(
                "guard_probe_score", stage="sampling"
            ).value
            > 0
        )

    def test_trips_fallbacks_and_transitions_counted(self, rng):
        registry = MetricsRegistry()
        guard = self._guarded(
            registry, max_density_cv=0.0, trip_limit=1, cooldown=2
        )
        xyz = rng.normal(size=(1, 64, 3))
        guard.infer(xyz)  # probe trips -> breaker opens
        assert (
            _counter_value(
                registry, "guard_probe_trips_total", stage="sampling"
            )
            == 1
        )
        assert (
            _counter_value(
                registry, "guard_fallbacks_total",
                stage="sampling", reason="probe_tripped",
            )
            == 1
        )
        assert (
            _counter_value(
                registry, "guard_breaker_transitions_total",
                stage="sampling", from_state="closed",
                to_state="open",
            )
            == 1
        )
        assert (
            registry.gauge(
                "guard_breaker_state", stage="sampling"
            ).value
            == 2.0
        )
        guard.infer(xyz)  # cooldown: forced exact
        assert (
            _counter_value(
                registry, "guard_fallbacks_total",
                stage="sampling", reason="circuit_open",
            )
            == 1
        )
        guard.infer(xyz)  # cooldown elapsed: half-open re-probe
        assert (
            _counter_value(
                registry, "guard_reprobes_total", stage="sampling"
            )
            == 1
        )
        assert (
            _counter_value(
                registry, "guard_breaker_transitions_total",
                stage="sampling", from_state="open",
                to_state="half_open",
            )
            == 1
        )

    def test_rejection_counted_and_probe_spans_traced(self):
        tracer, registry = Tracer(), MetricsRegistry()
        guard = GuardedPipeline(
            EdgePCPipeline(_pn2(), tracer=tracer, metrics=registry)
        )
        bad = np.full((1, 64, 3), np.nan)
        result = guard.infer(bad)
        assert result.rejected
        assert (
            _counter_value(registry, "guard_rejections_total") == 1
        )
        names = [s.name for s in tracer.finished()]
        assert "guard.infer" in names

    def test_probe_span_carries_metric_and_threshold(self, rng):
        tracer = Tracer()
        guard = GuardedPipeline(
            EdgePCPipeline(_pn2(), tracer=tracer)
        )
        guard.infer(rng.normal(size=(1, 64, 3)))
        probes = [
            s for s in tracer.finished() if s.name == "guard.probe"
        ]
        assert probes
        for span in probes:
            assert span.attrs["stage"] in ("sampling", "neighbor")
            assert "metric" in span.attrs
            assert "threshold" in span.attrs
            assert span.attrs["reprobe"] is False


class TestStreamingTelemetry:
    def test_insert_and_evict_counters(self, rng):
        registry = MetricsRegistry()
        box = BoundingBox(np.zeros(3), np.ones(3))
        stream = StreamingMortonOrder(box, metrics=registry)
        stream.insert(rng.random((100, 3)))
        stream.insert(rng.random((50, 3)))
        assert (
            _counter_value(registry, "streaming_inserts_total") == 2
        )
        assert (
            _counter_value(
                registry, "streaming_points_inserted_total"
            )
            == 150
        )
        assert registry.gauge("streaming_points").value == 150
        removed = stream.remove_outside(
            BoundingBox(np.zeros(3), np.full(3, 0.5))
        )
        assert (
            _counter_value(registry, "streaming_evictions_total")
            == removed
        )
        assert (
            registry.gauge("streaming_points").value
            == 150 - removed
        )
        assert (
            _counter_value(
                registry, "streaming_maintenance_ops_total"
            )
            == stream.maintenance_ops
        )
        assert (
            registry.gauge("streaming_scratch_resort_ops").value
            == stream.scratch_resort_ops()
        )

    def test_dropped_points_counted_under_repair(self, rng):
        registry = MetricsRegistry()
        box = BoundingBox(np.zeros(3), np.ones(3))
        stream = StreamingMortonOrder(
            box,
            validation=ValidationPolicy(
                on_invalid="repair", bounding_box=box
            ),
            metrics=registry,
        )
        points = rng.random((20, 3))
        points[:5] += 10.0  # strays outside the scene box
        stream.insert(points)
        assert (
            _counter_value(
                registry, "streaming_points_dropped_total"
            )
            == 5
        )
        assert (
            _counter_value(
                registry, "streaming_points_inserted_total"
            )
            == 15
        )

    def test_metrics_off_by_default(self, rng):
        stream = StreamingMortonOrder(
            BoundingBox(np.zeros(3), np.ones(3))
        )
        stream.insert(rng.random((10, 3)))
        assert stream.metrics is None


class TestTrainerTelemetry:
    def test_epoch_spans_and_counters(self, rng):
        from repro.datasets.base import Batch
        from repro.train.trainer import Trainer

        tracer, registry = Tracer(), MetricsRegistry()
        model = _pn2(EdgePCConfig.baseline())
        batches = [
            Batch(
                xyz=rng.normal(size=(1, 16, 3)),
                labels=rng.integers(0, 3, size=(1, 16)),
            )
            for _ in range(2)
        ]
        trainer = Trainer(model, tracer=tracer, metrics=registry)
        result = trainer.fit(batches, epochs=2)
        names = [s.name for s in tracer.finished()]
        assert names.count("train.epoch") == 2
        assert names.count("train.evaluate") == 2
        assert names.count("train.fit") == 1
        assert _counter_value(registry, "train_epochs_total") == 2
        assert _counter_value(registry, "train_batches_total") == 4
        assert registry.gauge("train_last_loss").value == (
            pytest.approx(result.losses[-1])
        )
        assert (
            registry.gauge("train_last_accuracy").value
            == pytest.approx(result.train_accuracies[-1])
        )


class TestNeighborCacheCounters:
    def test_hits_and_stores_counted(self):
        cache = NeighborCache()
        assert (cache.stores, cache.hits) == (0, 0)
        cache.store(np.zeros((4, 2), dtype=np.int64))
        cache.load()
        cache.load()
        assert (cache.stores, cache.hits) == (1, 2)
        cache.clear()
        with pytest.raises(RuntimeError):
            cache.load()
        assert cache.hits == 2


class TestPerLayerOrdering:
    """Satellite: per_layer_s must be insertion-ordered by recorder
    event so trace/report diffs are stable across runs."""

    @pytest.mark.parametrize("name", ["W1", "W3"])
    def test_order_matches_first_event_occurrence(self, name):
        spec = standard_workloads()[name]
        config = EdgePCConfig.paper_default()
        profiler = PipelineProfiler()
        recorder = trace(spec, config)
        breakdown = profiler.breakdown(recorder, config)
        expected = list(
            dict.fromkeys(
                f"{e.stage}[{e.layer}]" for e in recorder
            )
        )
        assert list(breakdown.per_layer_s) == expected

    def test_order_is_deterministic_across_runs(self):
        spec = standard_workloads()["W1"]
        config = EdgePCConfig.paper_default()
        profiler = PipelineProfiler()
        first = profiler.breakdown(trace(spec, config), config)
        second = profiler.breakdown(trace(spec, config), config)
        assert list(first.per_layer_s) == list(second.per_layer_s)
        assert first.per_layer_s == second.per_layer_s
