"""Tests for the radix sort kernel (repro.core.sort) and streaming
Morton-order maintenance (repro.core.streaming)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import morton, structurize
from repro.core.sort import radix_argsort, radix_sort, sort_operation_count
from repro.core.streaming import StreamingMortonOrder
from repro.geometry import BoundingBox


class TestRadixSort:
    def test_sorts_random_keys(self, rng):
        keys = rng.integers(0, 1 << 62, size=5000)
        assert np.array_equal(
            radix_sort(keys), np.sort(keys)
        )

    def test_argsort_matches_numpy(self, rng):
        keys = rng.integers(0, 1 << 40, size=2000)
        assert np.array_equal(
            radix_argsort(keys), np.argsort(keys, kind="stable")
        )

    def test_stability(self):
        keys = np.array([5, 3, 5, 3, 5], dtype=np.int64)
        order = radix_argsort(keys)
        # Equal keys keep input order.
        assert order.tolist() == [1, 3, 0, 2, 4]

    def test_empty(self):
        assert radix_argsort(np.array([], dtype=np.int64)).size == 0

    def test_single(self):
        assert radix_argsort(np.array([42])).tolist() == [0]

    def test_already_sorted(self):
        keys = np.arange(100)
        assert np.array_equal(radix_argsort(keys), keys)

    def test_skips_unused_passes(self, rng):
        """Small keys sort correctly (pass count derived from max)."""
        keys = rng.integers(0, 200, size=500)
        assert np.array_equal(radix_sort(keys), np.sort(keys))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            radix_argsort(np.array([-1, 3]))

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            radix_argsort(np.array([1.5]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            radix_argsort(np.zeros((2, 2), dtype=np.int64))

    def test_sorts_real_morton_codes(self, medium_cloud):
        order = structurize(medium_cloud)
        assert np.array_equal(
            radix_argsort(order.codes),
            np.argsort(order.codes, kind="stable"),
        )

    def test_operation_count(self):
        assert sort_operation_count(1000, 32) == 1000 * 4
        assert sort_operation_count(1000, 63) == 1000 * 8
        with pytest.raises(ValueError):
            sort_operation_count(-1)

    @given(
        keys=arrays(
            np.int64,
            st.integers(0, 300),
            elements=st.integers(0, (1 << 62) - 1),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_property(self, keys):
        assert np.array_equal(
            radix_argsort(keys), np.argsort(keys, kind="stable")
        )


def _box() -> BoundingBox:
    return BoundingBox(np.zeros(3), np.ones(3) * 10.0)


class TestStreamingOrder:
    def test_insert_keeps_sorted(self, rng):
        stream = StreamingMortonOrder(_box())
        for _ in range(5):
            stream.insert(rng.random((100, 3)) * 10.0)
        assert (np.diff(stream.codes) >= 0).all()
        assert len(stream) == 500

    def test_matches_batch_structurize(self, rng):
        """Incremental insertion and a one-shot structurize produce
        the same sorted code sequence."""
        stream = StreamingMortonOrder(_box())
        chunks = [rng.random((64, 3)) * 10.0 for _ in range(4)]
        for chunk in chunks:
            stream.insert(chunk)
        batch = structurize(
            np.concatenate(chunks), bounding_box=_box()
        )
        assert np.array_equal(stream.codes, batch.sorted_codes)

    def test_as_order_identity_permutation(self, rng):
        stream = StreamingMortonOrder(_box())
        stream.insert(rng.random((50, 3)) * 10.0)
        order = stream.as_order()
        assert np.array_equal(order.permutation, np.arange(50))
        assert (np.diff(order.sorted_codes) >= 0).all()

    def test_order_feeds_sampler(self, rng):
        from repro.core import MortonSampler

        stream = StreamingMortonOrder(_box())
        stream.insert(rng.random((256, 3)) * 10.0)
        result = MortonSampler().sample(
            stream.points, 32, order=stream.as_order()
        )
        assert len(result) == 32

    def test_remove_outside(self, rng):
        stream = StreamingMortonOrder(_box())
        stream.insert(rng.random((200, 3)) * 10.0)
        half = BoundingBox(np.zeros(3), np.array([5.0, 10.0, 10.0]))
        removed = stream.remove_outside(half)
        assert removed > 0
        assert half.contains(stream.points).all()
        assert (np.diff(stream.codes) >= 0).all()

    def test_remove_duplicates_keeps_newest(self):
        stream = StreamingMortonOrder(_box())
        first = np.array([[1.0, 1.0, 1.0]])
        second = np.array([[1.0001, 1.0001, 1.0001]])  # same voxel
        stream.insert(first)
        stream.insert(second)
        removed = stream.remove_oldest_duplicates()
        assert removed == 1
        assert np.allclose(stream.points[0], second[0])

    def test_maintenance_cheaper_than_resort(self, rng):
        """Inserting a small frame into a large standing set costs less
        than a from-scratch re-sort."""
        stream = StreamingMortonOrder(_box())
        stream.insert(rng.random((5000, 3)) * 10.0)
        before = stream.maintenance_ops
        stream.insert(rng.random((100, 3)) * 10.0)
        incremental = stream.maintenance_ops - before
        assert incremental < stream.scratch_resort_ops()

    def test_empty_insert_noop(self):
        stream = StreamingMortonOrder(_box())
        stream.insert(np.empty((0, 3)))
        assert len(stream) == 0

    def test_as_order_empty_raises(self):
        with pytest.raises(ValueError):
            StreamingMortonOrder(_box()).as_order()

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            StreamingMortonOrder(_box()).insert(np.zeros((3, 2)))


class TestStreamingValidation:
    """The sanitization boundary at StreamingMortonOrder.insert."""

    def test_out_of_box_accepted_by_default(self, rng):
        """Without a policy box, strays quantize to boundary voxels —
        the historical behavior."""
        stream = StreamingMortonOrder(_box())
        stream.insert(rng.random((20, 3)) * 10.0)
        stray = np.array([[15.0, -3.0, 25.0]])
        stream.insert(stray)
        assert len(stream) == 21
        assert stream.last_report.ok
        assert (np.diff(stream.codes) >= 0).all()

    def test_repair_with_box_drops_strays(self, rng):
        from repro.robustness import ValidationPolicy

        policy = ValidationPolicy.repair(bounding_box=_box())
        stream = StreamingMortonOrder(_box(), validation=policy)
        frame = rng.random((20, 3)) * 10.0
        frame[:5] += 100.0
        stream.insert(frame)
        assert len(stream) == 15
        assert stream.last_report.dropped == 5
        assert _box().contains(stream.points).all()

    def test_all_stray_frame_is_noop_under_repair(self, rng):
        from repro.robustness import ValidationPolicy

        policy = ValidationPolicy.repair(bounding_box=_box())
        stream = StreamingMortonOrder(_box(), validation=policy)
        stream.insert(rng.random((10, 3)) * 10.0)
        stream.insert(rng.random((8, 3)) * 10.0 + 100.0)
        assert len(stream) == 10  # whole frame discarded, no error
        assert stream.last_report.n_output == 0

    def test_clamp_with_box_clips_strays(self, rng):
        from repro.robustness import ValidationPolicy

        policy = ValidationPolicy.clamp(bounding_box=_box())
        stream = StreamingMortonOrder(_box(), validation=policy)
        frame = rng.random((10, 3)) * 10.0
        frame[0] = [50.0, -50.0, 5.0]
        stream.insert(frame)
        assert len(stream) == 10
        assert _box().contains(stream.points).all()

    def test_non_finite_insert_rejected_with_count(self, rng):
        from repro.robustness import CloudValidationError

        stream = StreamingMortonOrder(_box())
        frame = rng.random((10, 3)) * 10.0
        frame[2, 1] = np.nan
        frame[7, 0] = np.inf
        with pytest.raises(CloudValidationError, match="2 of 10"):
            stream.insert(frame)
        assert len(stream) == 0  # stream state untouched

    def test_repair_drops_non_finite_rows(self, rng):
        from repro.robustness import ValidationPolicy

        stream = StreamingMortonOrder(
            _box(), validation=ValidationPolicy.repair()
        )
        frame = rng.random((10, 3)) * 10.0
        frame[0, 0] = np.nan
        stream.insert(frame)
        assert len(stream) == 9
        assert np.isfinite(stream.points).all()

    def test_empty_stream_removals_are_noops(self):
        stream = StreamingMortonOrder(_box())
        assert stream.remove_outside(_box()) == 0
        assert stream.remove_oldest_duplicates() == 0
        assert len(stream) == 0
        assert stream.maintenance_ops == 0

    def test_zero_point_insert_then_remove(self, rng):
        stream = StreamingMortonOrder(_box())
        stream.insert(np.empty((0, 3)))
        assert stream.last_report is None  # no-op before sanitizing
        stream.insert(rng.random((5, 3)) * 10.0)
        stream.insert(np.empty((0, 3)))
        assert len(stream) == 5
        removed = stream.remove_outside(
            BoundingBox(np.zeros(3) - 1.0, np.ones(3) * 11.0)
        )
        assert removed == 0
