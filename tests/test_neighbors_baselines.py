"""Tests for the exact neighbor searchers (repro.neighbors)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neighbors import (
    KDTree,
    UniformGridIndex,
    ball_query,
    false_neighbor_ratio,
    knn,
    mean_neighbor_distance,
    pairwise_operation_count,
    recall,
)


def _brute_knn_reference(queries, candidates, k):
    d2 = (
        np.sum(queries**2, axis=1)[:, None]
        - 2.0 * queries @ candidates.T
        + np.sum(candidates**2, axis=1)[None, :]
    )
    return np.argsort(d2, axis=1, kind="stable")[:, :k]


class TestKNN:
    def test_matches_reference(self, medium_cloud, rng):
        queries = rng.normal(size=(50, 3))
        ours = knn(queries, medium_cloud, 8)
        ref = _brute_knn_reference(queries, medium_cloud, 8)
        for a, b in zip(ours, ref):
            assert set(a.tolist()) == set(b.tolist())

    def test_sorted_by_distance(self, medium_cloud, rng):
        queries = rng.normal(size=(10, 3))
        out = knn(queries, medium_cloud, 8)
        for q, row in zip(queries, out):
            d = np.linalg.norm(medium_cloud[row] - q, axis=1)
            assert (np.diff(d) >= -1e-12).all()

    def test_self_query_returns_self_first(self, small_cloud):
        out = knn(small_cloud, small_cloud, 3)
        assert np.array_equal(out[:, 0], np.arange(len(small_cloud)))

    def test_k_equals_n(self, rng):
        pts = rng.normal(size=(10, 3))
        out = knn(pts[:2], pts, 10)
        assert out.shape == (2, 10)
        assert sorted(out[0].tolist()) == list(range(10))

    def test_high_dimensional(self, rng):
        """Feature-space kNN (DGCNN's later modules) in 64-d."""
        feats = rng.normal(size=(100, 64))
        out = knn(feats, feats, 5)
        assert out.shape == (100, 5)
        assert np.array_equal(out[:, 0], np.arange(100))

    def test_rejects_k_zero(self, small_cloud):
        with pytest.raises(ValueError):
            knn(small_cloud, small_cloud, 0)

    def test_rejects_dim_mismatch(self, small_cloud, rng):
        with pytest.raises(ValueError):
            knn(rng.normal(size=(5, 4)), small_cloud, 2)

    def test_chunking_consistency(self, rng):
        """Results are identical across the internal chunk boundary."""
        pts = rng.normal(size=(5000, 3))
        out = knn(pts[:4100], pts, 4)
        ref = _brute_knn_reference(pts[:4100], pts, 4)
        mismatch = (out != ref).any(axis=1).mean()
        assert mismatch < 0.01  # only distance ties may differ


class TestBallQuery:
    def test_within_radius(self, medium_cloud, rng):
        queries = medium_cloud[:20]
        out = ball_query(queries, medium_cloud, 0.5, 8)
        for q, row in zip(queries, out):
            d = np.linalg.norm(medium_cloud[row] - q, axis=1)
            assert (d <= 0.5 + 1e-9).all()

    def test_pads_short_rows(self):
        pts = np.array(
            [[0, 0, 0], [0.1, 0, 0], [10, 0, 0], [11, 0, 0]],
            dtype=float,
        )
        out = ball_query(pts[:1], pts, 0.5, 4)
        # Only points 0 and 1 are in radius; the row pads with index 0.
        assert out[0].tolist() == [0, 1, 0, 0]

    def test_empty_ball_falls_back_to_nearest(self):
        pts = np.array([[0, 0, 0], [10, 0, 0]], dtype=float)
        query = np.array([[5.0, 0, 0]])
        out = ball_query(query, pts, 0.1, 2)
        assert set(out[0].tolist()) <= {0, 1}
        assert len(set(out[0].tolist())) == 1

    def test_scan_order(self):
        """In-radius candidates are taken in scan order, matching the
        reference PointNet++ CUDA kernel."""
        pts = np.array(
            [[0.3, 0, 0], [0.2, 0, 0], [0.1, 0, 0], [0, 0, 0]],
            dtype=float,
        )
        out = ball_query(pts[3:], pts, 1.0, 2)
        assert out[0].tolist() == [0, 1]

    def test_paper_fig10_example(self):
        """Fig. 10(a): with the Fig. 8 point set and squared radius 11,
        P2's in-ball neighbors are P0, P1 and P4 (plus P2 itself under
        the reference kernel's self-inclusive convention)."""
        pts = np.array(
            [
                [0.0, 0.0, 0.0],    # P0: d2 to P2 = 10
                [3.0, 2.0, 1.0],    # P1: 4
                [3.0, 0.0, 1.0],    # P2: 0
                [6.0, 3.0, 2.0],    # P3: 19
                [5.0, -2.0, 2.0],   # P4: 9
            ]
        )
        out = ball_query(pts[2:3], pts, np.sqrt(11.0), 4)
        assert set(out[0].tolist()) == {0, 1, 2, 4}

    def test_paper_fig10_knn_order(self):
        """Fig. 10(a) kNN side: by ascending distance from P2 the
        ranking is P2 (self), P1, P4, P0, P3."""
        pts = np.array(
            [
                [0.0, 0.0, 0.0],
                [3.0, 2.0, 1.0],
                [3.0, 0.0, 1.0],
                [6.0, 3.0, 2.0],
                [5.0, -2.0, 2.0],
            ]
        )
        out = knn(pts[2:3], pts, 5)
        assert out[0].tolist() == [2, 1, 4, 0, 3]

    def test_rejects_bad_radius(self, small_cloud):
        with pytest.raises(ValueError):
            ball_query(small_cloud, small_cloud, 0.0, 4)

    def test_operation_count(self):
        assert pairwise_operation_count(100, 200) == 20000


class TestKDTree:
    def test_matches_brute_force(self, medium_cloud, rng):
        tree = KDTree(medium_cloud)
        queries = rng.normal(size=(30, 3))
        for q in queries:
            ours = set(tree.query(q, 5).tolist())
            ref = set(
                _brute_knn_reference(q[None], medium_cloud, 5)[0].tolist()
            )
            assert ours == ref

    def test_single_nearest(self, small_cloud):
        tree = KDTree(small_cloud)
        idx = tree.query(small_cloud[17], 1)
        assert idx[0] == 17

    def test_batch_query(self, small_cloud):
        tree = KDTree(small_cloud)
        out = tree.query_batch(small_cloud[:5], 3)
        assert out.shape == (5, 3)
        assert np.array_equal(out[:, 0], np.arange(5))

    def test_radius_query_matches_brute(self, small_cloud):
        tree = KDTree(small_cloud)
        q = np.array([0.1, 0.2, 0.3])
        ours = tree.query_radius(q, 0.6)
        d = np.linalg.norm(small_cloud - q, axis=1)
        ref = np.flatnonzero(d <= 0.6)
        assert np.array_equal(ours, ref)

    def test_results_sorted_by_distance(self, small_cloud):
        tree = KDTree(small_cloud)
        row = tree.query(np.array([0.0, 0.0, 0.0]), 6)
        d = np.linalg.norm(small_cloud[row], axis=1)
        assert (np.diff(d) >= -1e-12).all()

    def test_depth_is_logarithmic(self, medium_cloud):
        tree = KDTree(medium_cloud)
        assert tree.depth <= 2 * int(np.ceil(np.log2(1024))) + 1

    def test_single_point_tree(self):
        tree = KDTree(np.array([[1.0, 2.0, 3.0]]))
        assert tree.query(np.zeros(3), 1)[0] == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KDTree(np.empty((0, 3)))

    def test_rejects_bad_k(self, small_cloud):
        with pytest.raises(ValueError):
            KDTree(small_cloud).query(np.zeros(3), 0)

    @given(seed=st.integers(0, 2**16), k=st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_exactness_property(self, seed, k):
        gen = np.random.default_rng(seed)
        pts = gen.normal(size=(80, 3))
        tree = KDTree(pts)
        q = gen.normal(size=3)
        ours = set(tree.query(q, k).tolist())
        ref = set(_brute_knn_reference(q[None], pts, k)[0].tolist())
        assert ours == ref


class TestUniformGrid:
    def test_radius_matches_brute(self, medium_cloud):
        grid = UniformGridIndex(medium_cloud, 0.3)
        q = medium_cloud[7]
        ours = grid.query_radius(q, 0.3)
        d = np.linalg.norm(medium_cloud - q, axis=1)
        assert np.array_equal(ours, np.flatnonzero(d <= 0.3))

    def test_knn_matches_brute(self, medium_cloud):
        grid = UniformGridIndex(medium_cloud, 0.2)
        for i in (0, 100, 555):
            ours = set(grid.query_knn(medium_cloud[i], 6).tolist())
            ref = set(
                _brute_knn_reference(
                    medium_cloud[i][None], medium_cloud, 6
                )[0].tolist()
            )
            assert ours == ref

    def test_occupied_cells(self, small_cloud):
        grid = UniformGridIndex(small_cloud, 0.5)
        assert 1 <= grid.num_occupied_cells <= len(small_cloud)

    def test_knn_whole_cloud(self, rng):
        pts = rng.normal(size=(20, 3))
        grid = UniformGridIndex(pts, 0.1)
        out = grid.query_knn(pts[0], 20)
        assert sorted(out.tolist()) == list(range(20))

    def test_rejects_bad_cell_size(self, small_cloud):
        with pytest.raises(ValueError):
            UniformGridIndex(small_cloud, -1.0)


class TestNeighborMetrics:
    def test_fnr_zero_for_identical(self, rng):
        idx = rng.integers(0, 100, (20, 5))
        assert false_neighbor_ratio(idx, idx) == 0.0

    def test_fnr_one_for_disjoint(self):
        a = np.arange(10).reshape(2, 5)
        b = a + 100
        assert false_neighbor_ratio(a, b) == 1.0

    def test_fnr_half_overlap(self):
        approx = np.array([[0, 1, 2, 3]])
        exact = np.array([[0, 1, 8, 9]])
        assert false_neighbor_ratio(approx, exact) == 0.5

    def test_fnr_counts_sets_not_slots(self):
        """Duplicate padding counts once."""
        approx = np.array([[0, 0, 0, 5]])
        exact = np.array([[0, 1, 2, 3]])
        assert false_neighbor_ratio(approx, exact) == 0.5

    def test_fnr_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            false_neighbor_ratio(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_recall_complementary(self):
        approx = np.array([[0, 1, 2, 3]])
        exact = np.array([[0, 1, 8, 9]])
        assert recall(approx, exact) == 0.5

    def test_recall_perfect(self, rng):
        idx = rng.integers(0, 50, (5, 4))
        assert recall(idx, idx) == 1.0

    def test_mean_neighbor_distance(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [2, 0, 0]], dtype=float)
        queries = pts[:1]
        nbrs = np.array([[1, 2]])
        assert mean_neighbor_distance(
            pts, queries, nbrs
        ) == pytest.approx(1.5)

    def test_fnr_windowed_beats_pure_index(self, medium_cloud):
        """Integration: the windowed Morton search has lower FNR than
        pure index selection (the Fig. 6 -> Fig. 15a improvement)."""
        from repro.core import MortonNeighborSearch, structurize

        order = structurize(medium_cloud)
        exact = knn(medium_cloud, medium_cloud, 16)
        pure = MortonNeighborSearch(16).search(
            medium_cloud, order=order
        )
        windowed = MortonNeighborSearch(16, 64).search(
            medium_cloud, order=order
        )
        assert false_neighbor_ratio(
            windowed, exact
        ) < false_neighbor_ratio(pure, exact)
