"""Tests for the prior-work baseline models (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines import (
    MappingUnitModel,
    SplitKDTree,
    apply_delayed_aggregation,
    as_table,
    pointnet2_mapping_unit,
    summarize,
    table2_rows,
    unique_full_marks,
    verify_against_full_tree,
)
from repro.core import EdgePCConfig
from repro.runtime import PipelineProfiler
from repro.workloads import standard_workloads, trace


class TestMesorasi:
    def test_feature_compute_shrinks(self):
        spec = standard_workloads()["W1"]
        baseline = trace(spec, EdgePCConfig.baseline())
        mesorasi = apply_delayed_aggregation(baseline)
        profiler = PipelineProfiler()
        cfg = EdgePCConfig.baseline()
        result = summarize(
            profiler.breakdown(baseline, cfg),
            profiler.breakdown(mesorasi, cfg),
        )
        # Paper Sec. 6.4: FC ~2.1x faster, grouping ~2.73x slower,
        # E2E ~1.12x.  Shapes: FC speedup > 1, grouping slowdown > 1,
        # E2E gain small.
        assert result.feature_speedup > 1.5
        assert result.grouping_slowdown > 1.5
        assert 1.0 <= result.end_to_end_speedup < 1.5

    def test_sampling_untouched(self):
        spec = standard_workloads()["W1"]
        baseline = trace(spec, EdgePCConfig.baseline())
        mesorasi = apply_delayed_aggregation(baseline)
        profiler = PipelineProfiler()
        cfg = EdgePCConfig.baseline()
        assert profiler.breakdown(
            mesorasi, cfg
        ).sample_s == pytest.approx(
            profiler.breakdown(baseline, cfg).sample_s
        )

    def test_flops_divided_by_k(self):
        spec = standard_workloads()["W1"]
        baseline = trace(spec, EdgePCConfig.baseline())
        mesorasi = apply_delayed_aggregation(baseline)
        base_matmul = [e for e in baseline if e.op == "matmul"][0]
        meso_matmul = [e for e in mesorasi if e.op == "matmul"][0]
        assert meso_matmul.counts["flops"] == pytest.approx(
            base_matmul.counts["flops"] / 32
        )

    def test_event_count_preserved(self):
        spec = standard_workloads()["W4"]
        baseline = trace(spec, EdgePCConfig.baseline())
        assert len(apply_delayed_aggregation(baseline)) == len(baseline)


class TestPointAcc:
    def test_mapping_unit_speedup(self):
        """EdgePC folded into PointAcc's mapping unit reduces distance
        ops substantially (Sec. 6.4's O(N^2) -> O(N) argument)."""
        model = pointnet2_mapping_unit(
            8192, [1024, 256, 64, 16], k=32
        )
        assert model.speedup() > 10

    def test_distance_ops_formula(self):
        model = MappingUnitModel(layer_sizes=((100, 10),), k=4)
        assert model.distance_ops() == 10 * 100 * 2

    def test_morton_ops_scale_linearly(self):
        small = MappingUnitModel(layer_sizes=((1000, 100),), k=8)
        large = MappingUnitModel(layer_sizes=((4000, 400),), k=8)
        # O(N log N) growth: ~4.3x for 4x points, far below the 16x
        # growth of the quadratic baseline.
        ratio = large.morton_ops() / small.morton_ops()
        assert 3.5 < ratio < 6.0
        quad_ratio = large.distance_ops() / small.distance_ops()
        assert quad_ratio == pytest.approx(16.0)

    def test_rejects_bad_layers(self):
        with pytest.raises(ValueError):
            MappingUnitModel(layer_sizes=((10, 20),), k=4)

    def test_rejects_bad_window(self):
        model = MappingUnitModel(layer_sizes=((100, 10),), k=4)
        with pytest.raises(ValueError):
            model.morton_ops(window_multiplier=0)


class TestCrescent:
    def test_exactness_vs_full_tree(self, rng):
        pts = rng.normal(size=(256, 3))
        queries = rng.normal(size=(10, 3))
        assert verify_against_full_tree(pts, queries, k=5, top_depth=3)

    def test_region_count(self, rng):
        tree = SplitKDTree(rng.normal(size=(128, 3)), top_depth=4)
        assert tree.num_regions == 16

    def test_regions_partition_points(self, rng):
        tree = SplitKDTree(rng.normal(size=(100, 3)), top_depth=3)
        all_indices = np.concatenate(
            [r.indices for r in tree.regions]
        )
        assert sorted(all_indices.tolist()) == list(range(100))

    def test_query_returns_k(self, rng):
        tree = SplitKDTree(rng.normal(size=(64, 3)), top_depth=2)
        out = tree.query(np.zeros(3), 7)
        assert out.shape == (7,)
        assert len(set(out.tolist())) == 7

    def test_locality_fraction_high(self, rng):
        """Crescent's premise: nearly all visits land in contiguous
        bottom trees."""
        tree = SplitKDTree(rng.normal(size=(512, 3)), top_depth=3)
        for q in rng.normal(size=(20, 3)):
            tree.query(q, 8)
        assert tree.locality_fraction() > 0.9

    def test_rejects_too_few_points(self, rng):
        with pytest.raises(ValueError):
            SplitKDTree(rng.normal(size=(4, 3)), top_depth=4)

    def test_rejects_bad_k(self, rng):
        tree = SplitKDTree(rng.normal(size=(32, 3)), top_depth=2)
        with pytest.raises(ValueError):
            tree.query(np.zeros(3), 0)


class TestTable2:
    def test_only_edgepc_checks_everything(self):
        marks = unique_full_marks()
        assert marks["EdgePC"]
        assert sum(marks.values()) == 1

    def test_rows_match_paper(self):
        rows = {r.name: r for r in table2_rows()}
        assert not rows["Point-X"].general
        assert not rows["Crescent"].no_design_overhead
        assert not rows["PointAcc"].no_design_overhead
        assert not rows["Crescent"].accelerates_sampling
        assert rows["PointAcc"].accelerates_sampling

    def test_table_renders(self):
        text = as_table()
        assert "EdgePC" in text
        assert "Crescent" in text
        assert len(text.splitlines()) == len(table2_rows()) + 2
