"""Tests for layers, losses, optimizers, and point-cloud functional ops
(repro.nn.layers / losses / optim / functional)."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.functional import (
    edge_features,
    gather_points,
    group_points,
    max_pool_neighbors,
    relative_neighborhoods,
)
from repro.nn.layers import (
    BatchNorm,
    Dropout,
    LeakyReLU,
    Linear,
    Module,
    ReLU,
    Sequential,
    shared_mlp,
)
from repro.nn.losses import accuracy, cross_entropy, log_softmax, softmax
from repro.nn.optim import SGD, Adam, StepLR


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 7)

    def test_applies_to_last_axis(self, rng):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 6, 4))))
        assert out.shape == (2, 3, 6, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        zero_out = layer(Tensor(np.zeros((1, 4))))
        assert np.allclose(zero_out.data, 0.0)

    def test_rejects_wrong_channels(self, rng):
        with pytest.raises(ValueError):
            Linear(4, 2, rng=rng)(Tensor(np.zeros((5, 3))))

    def test_gradients_flow(self, rng):
        layer = Linear(3, 2, rng=rng)
        loss = (layer(Tensor(rng.normal(size=(4, 3)))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestBatchNorm:
    def test_normalizes_in_train_mode(self, rng):
        bn = BatchNorm(4)
        out = bn(Tensor(rng.normal(2.0, 3.0, size=(100, 4))))
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_normalizes_over_all_leading_axes(self, rng):
        bn = BatchNorm(4)
        out = bn(Tensor(rng.normal(5.0, 2.0, size=(8, 16, 4))))
        assert np.allclose(
            out.data.reshape(-1, 4).mean(axis=0), 0.0, atol=1e-7
        )

    def test_running_stats_converge(self, rng):
        bn = BatchNorm(2, momentum=0.5)
        for _ in range(30):
            bn(Tensor(rng.normal(3.0, 1.0, size=(200, 2))))
        assert np.allclose(bn.running_mean, 3.0, atol=0.3)

    def test_eval_mode_uses_running_stats(self, rng):
        bn = BatchNorm(2, momentum=1.0)
        bn(Tensor(rng.normal(2.0, 1.0, size=(500, 2))))
        bn.eval()
        x = Tensor(np.full((4, 2), 2.0))
        out = bn(x)
        assert np.allclose(out.data, 0.0, atol=0.2)

    def test_gamma_beta_trainable(self, rng):
        bn = BatchNorm(3)
        (bn(Tensor(rng.normal(size=(10, 3)))) ** 2).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None

    def test_rejects_wrong_channels(self, rng):
        with pytest.raises(ValueError):
            BatchNorm(3)(Tensor(np.zeros((5, 4))))


class TestActivationsAndDropout:
    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        assert out.data.tolist() == [0.0, 2.0]

    def test_leaky_relu_module(self):
        out = LeakyReLU(0.1)(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.data, [-0.1, 2.0])

    def test_dropout_train_scales(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((1000, 4)))
        out = drop(x)
        kept = out.data != 0
        assert 0.3 < kept.mean() < 0.7
        assert np.allclose(out.data[kept], 2.0)

    def test_dropout_eval_identity(self, rng):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(rng.normal(size=(10, 4)))
        assert np.array_equal(drop(x).data, x.data)

    def test_dropout_zero_p(self, rng):
        x = Tensor(rng.normal(size=(5, 2)))
        assert np.array_equal(Dropout(0.0)(x).data, x.data)

    def test_dropout_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestModuleInfrastructure:
    def test_parameter_registry(self, rng):
        mlp = shared_mlp([4, 8, 8], rng=rng)
        names = [n for n, _ in mlp.named_parameters()]
        assert len(names) == len(set(names))
        # 2 Linears (w+b) + 2 BatchNorms (gamma+beta) = 8 params.
        assert len(names) == 8

    def test_state_dict_roundtrip(self, rng):
        a = shared_mlp([4, 8], rng=np.random.default_rng(1))
        b = shared_mlp([4, 8], rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        assert np.allclose(a(x).data, b(x).data)

    def test_state_dict_rejects_missing_keys(self, rng):
        a = shared_mlp([4, 8], rng=rng)
        state = a.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_rejects_bad_shape(self, rng):
        a = shared_mlp([4, 8], rng=rng)
        state = a.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        mlp = shared_mlp([4, 8, 8], rng=rng)
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_zero_grad(self, rng):
        mlp = shared_mlp([4, 8], rng=rng)
        (mlp(Tensor(rng.normal(size=(5, 4)))) ** 2).sum().backward()
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_num_parameters(self, rng):
        layer = Linear(4, 8, rng=rng)
        assert layer.num_parameters() == 4 * 8 + 8

    def test_sequential_indexing(self, rng):
        mlp = shared_mlp([4, 8], rng=rng)
        assert len(mlp) == 3  # Linear, BatchNorm, ReLU
        assert isinstance(mlp[0], Linear)

    def test_shared_mlp_no_final_activation(self, rng):
        mlp = shared_mlp([4, 8, 2], rng=rng, final_activation=False)
        assert isinstance(mlp[-1], Linear)

    def test_shared_mlp_rejects_single_channel(self, rng):
        with pytest.raises(ValueError):
            shared_mlp([4], rng=rng)

    def test_shared_mlp_rejects_bad_activation(self, rng):
        with pytest.raises(ValueError):
            shared_mlp([4, 8], rng=rng, activation="gelu")


class TestLosses:
    def test_log_softmax_normalizes(self, rng):
        logp = log_softmax(Tensor(rng.normal(size=(5, 7))))
        assert np.allclose(np.exp(logp.data).sum(axis=1), 1.0)

    def test_softmax_stability(self):
        probs = softmax(Tensor(np.array([[1000.0, 1000.0, 0.0]])))
        assert np.isfinite(probs.data).all()
        assert probs.data[0, 0] == pytest.approx(0.5)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 8)))
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(8))

    def test_cross_entropy_segmentation_shape(self, rng):
        logits = Tensor(rng.normal(size=(2, 16, 5)))
        loss = cross_entropy(logits, rng.integers(0, 5, (2, 16)))
        assert loss.shape == ()
        assert loss.item() > 0

    def test_cross_entropy_gradient_direction(self, rng):
        logits = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        targets = rng.integers(0, 3, 6)
        cross_entropy(logits, targets).backward()
        # Gradient at the target class is (p - 1) < 0.
        for i, t in enumerate(targets):
            assert logits.grad[i, t] < 0

    def test_label_smoothing(self, rng):
        logits = Tensor(np.array([[100.0, 0.0]]))
        plain = cross_entropy(logits, np.array([0]))
        smoothed = cross_entropy(
            logits, np.array([0]), label_smoothing=0.1
        )
        assert smoothed.item() > plain.item()

    def test_rejects_bad_targets(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.array([0, 1, 2, 3]))

    def test_rejects_shape_mismatch(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.zeros(5, dtype=int))

    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert accuracy(logits, np.array([0, 0])) == 0.5


class TestOptimizers:
    def _quadratic_descent(self, make_optimizer, steps=200):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = make_optimizer([x])
        for _ in range(steps):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        return np.abs(x.data).max()

    def test_sgd_converges(self):
        final = self._quadratic_descent(
            lambda p: SGD(p, lr=0.1, momentum=0.0)
        )
        assert final < 1e-6

    def test_sgd_momentum_converges(self):
        final = self._quadratic_descent(
            lambda p: SGD(p, lr=0.05, momentum=0.9), steps=400
        )
        assert final < 1e-6

    def test_adam_converges(self):
        final = self._quadratic_descent(
            lambda p: Adam(p, lr=0.3), steps=300
        )
        assert final < 1e-4

    def test_weight_decay_shrinks(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([x], lr=0.1, momentum=0.0, weight_decay=0.5)
        x.grad = np.zeros(1)
        opt.step()
        assert x.data[0] < 1.0

    def test_skips_params_without_grad(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        before = x.data.copy()
        SGD([x], lr=0.1).step()
        assert np.array_equal(x.data, before)

    def test_step_lr_decays(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([x], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self, rng):
        x = Tensor(rng.normal(size=(2,)), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([x], lr=0.0)


class TestFunctional:
    def test_gather_points(self, rng):
        feats = Tensor(rng.normal(size=(2, 10, 4)), requires_grad=True)
        idx = np.array([[0, 5], [9, 9]])
        out = gather_points(feats, idx)
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out.data[1, 0], feats.data[1, 9])
        out.sum().backward()
        assert feats.grad[1, 9].sum() == pytest.approx(8.0)

    def test_group_points(self, rng):
        feats = Tensor(rng.normal(size=(2, 10, 3)), requires_grad=True)
        idx = rng.integers(0, 10, (2, 4, 5))
        out = group_points(feats, idx)
        assert out.shape == (2, 4, 5, 3)
        assert np.array_equal(
            out.data[0, 2, 3], feats.data[0, idx[0, 2, 3]]
        )

    def test_group_points_rejects_out_of_range(self, rng):
        feats = Tensor(rng.normal(size=(1, 4, 2)))
        with pytest.raises(ValueError):
            group_points(feats, np.array([[[0, 9]]]))

    def test_relative_neighborhoods_zero_for_self(self, rng):
        xyz = rng.normal(size=(1, 8, 3))
        centers = np.array([[2, 5]])
        neighbors = np.array([[[2, 3], [5, 0]]])
        rel = relative_neighborhoods(xyz, centers, neighbors)
        assert np.allclose(rel[0, 0, 0], 0.0)
        assert np.allclose(rel[0, 1, 0], 0.0)
        assert np.allclose(
            rel[0, 0, 1], xyz[0, 3] - xyz[0, 2]
        )

    def test_max_pool_neighbors(self, rng):
        grouped = Tensor(rng.normal(size=(2, 4, 6, 3)))
        out = max_pool_neighbors(grouped)
        assert out.shape == (2, 4, 3)
        assert np.allclose(out.data, grouped.data.max(axis=2))

    def test_max_pool_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            max_pool_neighbors(Tensor(rng.normal(size=(2, 4, 3))))

    def test_edge_features_structure(self, rng):
        feats = Tensor(rng.normal(size=(1, 6, 2)))
        idx = np.array([[[1, 2]] * 6])
        out = edge_features(feats, idx)
        assert out.shape == (1, 6, 2, 4)
        # First half is the center feature, second the difference.
        assert np.allclose(out.data[0, 3, 0, :2], feats.data[0, 3])
        assert np.allclose(
            out.data[0, 3, 0, 2:],
            feats.data[0, 1] - feats.data[0, 3],
        )

    def test_edge_features_self_edge_zero_diff(self, rng):
        feats = Tensor(rng.normal(size=(1, 4, 3)))
        idx = np.arange(4).reshape(1, 4, 1)
        out = edge_features(feats, idx)
        assert np.allclose(out.data[..., 3:], 0.0)
