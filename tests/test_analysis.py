"""Tests for the analysis package: grouping-traffic cache simulation,
tensor-core merge study, and report formatting."""

import numpy as np
import pytest

from repro.analysis import (
    SetAssociativeCache,
    compare_sorted_gather,
    duplicate_read_fraction,
    format_breakdown_row,
    format_comparison_row,
    format_layer_latencies,
    geometric_mean,
    merge_analysis,
    merge_split_error,
    merge_split_features,
    simulate_gather,
)
from repro.runtime import xavier


class TestCache:
    def test_hit_after_miss(self):
        cache = SetAssociativeCache(4, 2, line_bytes=64)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(32)  # same line

    def test_lru_eviction(self):
        cache = SetAssociativeCache(1, 2, line_bytes=64)
        cache.access(0)      # line 0
        cache.access(64)     # line 1
        cache.access(128)    # line 2 evicts line 0
        assert not cache.access(0)

    def test_lru_order_refreshes_on_hit(self):
        cache = SetAssociativeCache(1, 2, line_bytes=64)
        cache.access(0)
        cache.access(64)
        cache.access(0)      # refresh line 0
        cache.access(128)    # evicts line 1 (LRU), not line 0
        assert cache.access(0)

    def test_set_mapping(self):
        cache = SetAssociativeCache(2, 1, line_bytes=64)
        cache.access(0)    # set 0
        cache.access(64)   # set 1
        assert cache.access(0)
        assert cache.access(64)

    def test_capacity(self):
        cache = SetAssociativeCache(256, 8, line_bytes=128)
        assert cache.capacity_bytes == 256 * 8 * 128

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 2)


class TestGatherTraffic:
    def test_sorted_gather_reduces_traffic(self, rng):
        """The Sec. 5.4.2 result: row-sorting the index matrix cuts
        both L2 and DRAM read traffic.  The index matrix mimics a
        ball-query result on a raw (unordered) cloud: each row's
        neighbor indices scatter uniformly over the point range."""
        index = rng.integers(0, 2048, size=(2048, 64))
        result = compare_sorted_gather(index)
        assert result.l2_reduction > 0.2
        assert result.dram_reduction > 0.2

    def test_sequential_gather_mostly_coalesces(self):
        index = np.arange(128).reshape(64, 2)
        traffic = simulate_gather(index, feature_bytes_per_row=32)
        # Four 32-B rows share a 128-B line: most accesses coalesce or
        # hit L1, so far fewer than one L2 read per gathered entry.
        assert traffic.l2_reads < index.size / 2

    def test_duplicate_read_fraction(self):
        index = np.array([[0, 0, 1], [1, 2, 2]])
        assert duplicate_read_fraction(index) == pytest.approx(0.5)

    def test_duplicate_fraction_of_grouping(self, rng):
        """nk > N (the paper's nk = 8N for PointNet++) forces heavy
        duplication."""
        index = rng.integers(0, 1024, size=(1024, 8))
        assert duplicate_read_fraction(index) > 0.8

    def test_rejects_flat_index(self, rng):
        with pytest.raises(ValueError):
            simulate_gather(np.arange(5))


class TestTensorCoreMerge:
    def test_merge_latency_improves(self):
        """The Sec. 5.4.1 experiment: merging channels raises tensor
        core utilization and cuts latency at equal FLOPs."""
        points = merge_analysis(
            xavier(), rows=32 * 1000 * 32, in_channels=12,
            out_channels=64, merge_factors=(1, 10),
        )
        by_factor = {p.merge_factor: p for p in points}
        assert by_factor[1].utilization == 0.0
        assert by_factor[10].utilization == pytest.approx(0.4, abs=0.05)
        ratio = by_factor[1].latency_s / by_factor[10].latency_s
        assert 1.8 < ratio < 2.8  # paper: 40.4 ms -> 18.3 ms (2.2x)

    def test_flops_invariant(self):
        points = merge_analysis(
            xavier(), rows=1000, in_channels=16, out_channels=8,
            merge_factors=(1, 2, 4),
        )
        assert all(
            p.effective_channels == 16 * p.merge_factor for p in points
        )

    def test_rejects_non_dividing_factors(self):
        with pytest.raises(ValueError):
            merge_analysis(
                xavier(), rows=7, in_channels=4, out_channels=4,
                merge_factors=(2,),
            )

    def test_merge_split_identity_at_t1(self, rng):
        feats = rng.normal(size=(16, 4))
        weight = rng.normal(size=(4, 6))
        out = merge_split_features(feats, weight, 1)
        assert np.allclose(out, feats @ weight)

    def test_merge_split_averages_groups(self, rng):
        feats = rng.normal(size=(8, 4))
        weight = rng.normal(size=(4, 2))
        out = merge_split_features(feats, weight, 4)
        exact = feats @ weight
        assert np.allclose(out[0], exact[:4].mean(axis=0))
        assert np.allclose(out[0], out[3])

    def test_merge_split_error_small_on_smooth_field(self):
        """On Morton-ordered smooth features (neighbors similar), the
        merge/split approximation error is modest — the property the
        paper's 'not expected to degrade quality much' claim needs."""
        t = np.linspace(0, 1, 64)
        feats = np.stack([t, t**2, np.sin(t)], axis=1)
        weight = np.random.default_rng(0).normal(size=(3, 4))
        err = merge_split_error(feats, weight, 4)
        assert err < 0.1

    def test_merge_split_error_larger_on_random_field(self, rng):
        feats = rng.normal(size=(64, 3))
        weight = rng.normal(size=(3, 4))
        smooth = np.sort(feats, axis=0)
        assert merge_split_error(feats, weight, 4) > merge_split_error(
            smooth, weight, 4
        )

    def test_rejects_bad_merge(self, rng):
        with pytest.raises(ValueError):
            merge_split_features(
                rng.normal(size=(10, 2)), rng.normal(size=(2, 2)), 3
            )


class TestReports:
    def test_breakdown_row_formats(self):
        from repro.runtime.profiler import StageBreakdown

        row = format_breakdown_row(
            "W1",
            StageBreakdown(
                sample_s=0.1, neighbor_s=0.1, grouping_s=0.05,
                feature_s=0.25,
            ),
        )
        assert "W1" in row
        assert "40.0%" in row  # sample+NS share of 0.5 s

    def test_comparison_row_formats(self):
        from repro.runtime.profiler import (
            ComparisonReport,
            EnergyReport,
            StageBreakdown,
        )

        report = ComparisonReport(
            baseline=StageBreakdown(0.2, 0.2, 0.1, 0.5),
            optimized=StageBreakdown(0.1, 0.1, 0.1, 0.5),
            baseline_energy=EnergyReport(5.0, 1.0),
            optimized_energy=EnergyReport(4.0, 0.8),
        )
        row = format_comparison_row("W2", report)
        assert "2.00x" in row
        assert "20.0%" in row

    def test_layer_latency_listing(self):
        text = format_layer_latencies(
            {"sample[0]": 0.01, "sample[1]": 0.002},
            ["sample[0]", "sample[1]", "sample[2]"],
        )
        assert "10.000 ms" in text
        assert "0.000 ms" in text  # missing key prints zero

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
