"""Tests for the SLO engine and the deterministic dashboard.

The engine tests drive a :class:`FixedClock` + a plain
:class:`MetricsRegistry` by hand (no serving stack), so each window /
burn-rate / budget behavior is pinned in isolation; the dashboard
tests assert the render is a pure function of its inputs.
"""

import json
import math

import pytest

from repro.observability import (
    DashboardData,
    FixedClock,
    MetricsRegistry,
    SloEngine,
    SloObjective,
    SloSpec,
    load_artifacts,
    render_dashboard,
    slowest_traces,
)
from repro.observability.dashboard import (
    ARTIFACT_LOADGEN,
    ARTIFACT_METRICS,
    ARTIFACT_SLO,
    ARTIFACT_TRACE,
)


def _error_spec(target=0.25, threshold=2.0):
    return SloSpec(
        name="test",
        objectives=(
            SloObjective(
                name="errors",
                kind="error_rate",
                target=target,
                good_metric="serving_fleet_completed_total",
                bad_metrics=("serving_fleet_failed_total",),
                short_window_s=0.5,
                long_window_s=2.0,
                burn_threshold=threshold,
            ),
        ),
    )


class TestSpec:
    def test_round_trips_through_json_file(self, tmp_path):
        spec = _error_spec()
        path = tmp_path / "spec.json"
        spec.save(str(path))
        assert SloSpec.load(str(path)) == spec

    def test_rejects_unknown_schema_version(self):
        with pytest.raises(ValueError, match="schema_version"):
            SloSpec.from_dict(
                {"schema_version": 99, "objectives": []}
            )

    def test_rejects_duplicate_objective_names(self):
        objective = _error_spec().objectives[0]
        with pytest.raises(ValueError, match="duplicate"):
            SloSpec(objectives=(objective, objective))

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SloObjective(name="", kind="error_rate", target=0.1)
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="nope", target=0.1)
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="error_rate", target=1.5)
        with pytest.raises(ValueError):
            SloObjective(
                name="x",
                kind="error_rate",
                target=0.1,
                short_window_s=3.0,
                long_window_s=1.0,
            )

    def test_committed_spec_parses(self):
        # The spec the CI slo-report job runs under must stay loadable.
        import os

        spec = SloSpec.load(
            os.path.join(
                os.path.dirname(__file__), "..", "SLO_serving.json"
            )
        )
        assert spec.name == "serving"
        kinds = {o.kind for o in spec.objectives}
        assert kinds == {"latency_quantile", "error_rate", "goodput"}


class TestEngineNoData:
    def test_no_signal_is_nan_not_healthy(self):
        clock = FixedClock(0.0)
        engine = SloEngine(
            _error_spec(), MetricsRegistry(), clock=clock
        )
        clock.advance(1.0)
        engine.tick()
        (status,) = engine.evaluate()
        assert math.isnan(status.compliance)
        assert math.isnan(status.burn_short)
        assert math.isnan(status.budget_remaining)
        assert not status.alerting
        assert engine.exhausted() == []


class TestEngineErrorRate:
    def _engine(self, **kwargs):
        clock = FixedClock(0.0)
        registry = MetricsRegistry()
        engine = SloEngine(
            _error_spec(**kwargs), registry, clock=clock
        )
        return clock, registry, engine

    def test_clean_traffic_is_fully_compliant(self):
        clock, registry, engine = self._engine()
        registry.counter("serving_fleet_completed_total").inc(40)
        clock.advance(1.0)
        engine.tick()
        (status,) = engine.evaluate()
        assert status.compliance == 1.0
        assert status.burn_long == 0.0
        assert status.budget_remaining == 1.0
        assert not status.alerting

    def test_sustained_burn_raises_one_alert(self):
        clock, registry, engine = self._engine()
        # 50% failures against a 25% budget: burn 2.0x in both
        # windows, exactly at the threshold.
        for _ in range(4):
            clock.advance(0.25)
            registry.counter("serving_fleet_completed_total").inc(5)
            registry.counter("serving_fleet_failed_total").inc(5)
            engine.tick()
        assert [a.objective for a in engine.alerts] == ["errors"]
        alert = engine.alerts[0]
        assert alert.burn_short >= 2.0
        assert alert.burn_long >= 2.0
        # Still alerting on later ticks, but no duplicate alert.
        clock.advance(0.25)
        registry.counter("serving_fleet_failed_total").inc(5)
        assert engine.tick() == []
        assert len(engine.alerts) == 1

    def test_budget_exhaustion_and_report(self):
        clock, registry, engine = self._engine()
        registry.counter("serving_fleet_completed_total").inc(5)
        registry.counter("serving_fleet_failed_total").inc(5)
        clock.advance(1.0)
        engine.tick()
        assert engine.exhausted() == ["errors"]
        report = engine.report()
        assert report["spec"] == "test"
        assert report["exhausted"] == ["errors"]
        (status,) = report["objectives"]
        assert status["budget_remaining"] <= 0.0
        json.dumps(report)  # must stay JSON-serializable

    def test_publishes_slo_metrics(self):
        clock, registry, engine = self._engine()
        registry.counter("serving_fleet_completed_total").inc(10)
        clock.advance(1.0)
        engine.tick()
        names = {
            name for (name, _), _ in registry.items()
        }
        assert "slo_compliance_ratio" in names
        assert "slo_burn_rate" in names
        assert "slo_budget_remaining_ratio" in names

    def test_ticks_coalesce_below_min_interval(self):
        clock, registry, engine = self._engine()
        clock.advance(1.0)
        engine.tick()
        frames = len(engine._frames)
        clock.advance(0.01)  # below min_tick_interval_s=0.05
        engine.tick()
        assert len(engine._frames) == frames


class TestEngineLatencyAndGoodput:
    def test_latency_quantile_uses_target_bucket(self):
        clock = FixedClock(0.0)
        registry = MetricsRegistry()
        spec = SloSpec(
            name="lat",
            objectives=(
                SloObjective(
                    name="p95",
                    kind="latency_quantile",
                    target=0.1,
                    quantile=0.9,
                    metric="serving_request_latency_seconds",
                    short_window_s=0.5,
                    long_window_s=2.0,
                ),
            ),
        )
        engine = SloEngine(spec, registry, clock=clock)
        hist = registry.histogram(
            "serving_request_latency_seconds",
            buckets=(0.1, 1.0),
        )
        for _ in range(9):
            hist.observe(0.05)  # under the 100 ms target
        hist.observe(0.5)  # one slow outlier: exactly at quota
        clock.advance(1.0)
        engine.tick()
        (status,) = engine.evaluate()
        assert status.compliance == pytest.approx(0.9)
        assert status.burn_long == pytest.approx(1.0)
        assert status.budget_remaining == pytest.approx(0.0)

    def test_goodput_shortfall_burns_budget(self):
        clock = FixedClock(0.0)
        registry = MetricsRegistry()
        spec = SloSpec(
            name="gp",
            objectives=(
                SloObjective(
                    name="goodput",
                    kind="goodput",
                    target=10.0,
                    quantile=0.9,
                    good_metric="serving_fleet_completed_total",
                    short_window_s=0.5,
                    long_window_s=2.0,
                ),
            ),
        )
        engine = SloEngine(spec, registry, clock=clock)
        # 5 good/s against a 10/s target: 50% shortfall.
        registry.counter("serving_fleet_completed_total").inc(5)
        clock.advance(1.0)
        engine.tick()
        (status,) = engine.evaluate()
        assert status.compliance == pytest.approx(0.5)
        assert status.budget_remaining < 1.0


class TestDashboard:
    def _data(self):
        return DashboardData(
            title="t",
            fleet_stats={"completed": 5.0, "submitted": 6.0},
            replica_states={"0": "healthy", "1": "ejected"},
            queue_depths={"0": 2.0},
            slo_report={
                "spec": "serving",
                "objectives": [
                    {
                        "objective": "errors",
                        "kind": "error_rate",
                        "compliance": 0.9,
                        "burn_short": 1.0,
                        "burn_long": 0.5,
                        "budget_remaining": 0.4,
                        "alerting": True,
                    }
                ],
                "alerts": [{"objective": "errors"}],
                "exhausted": [],
            },
            latency_ms={"p50": 10.0, "p95": 20.0},
            trace_records=[
                {
                    "name": "request",
                    "trace_id": "trace-b",
                    "duration_s": 0.2,
                    "attrs": {"outcome": "ok", "attempts": 2},
                },
                {
                    "name": "request",
                    "trace_id": "trace-a",
                    "duration_s": 0.5,
                    "attrs": {"outcome": "failed", "attempts": 3},
                },
            ],
        )

    def test_render_is_deterministic(self):
        first = render_dashboard(self._data())
        second = render_dashboard(self._data())
        assert first == second

    def test_render_covers_every_section(self):
        text = render_dashboard(self._data())
        assert "fleet" in text
        assert "replica 1    ejected" in text
        assert "slo budgets :: spec=serving" in text
        assert "[ALERTING]" in text
        assert "latency (ms)" in text
        assert "trace-a" in text

    def test_slowest_traces_orders_by_duration_then_id(self):
        records = self._data().trace_records
        ranked = slowest_traces(records, top_k=5)
        assert [r["trace_id"] for r in ranked] == [
            "trace-a",
            "trace-b",
        ]
        assert slowest_traces(records, top_k=1)[0]["trace_id"] == (
            "trace-a"
        )

    def test_nan_renders_as_not_available(self):
        data = DashboardData(
            title="t",
            slo_report={
                "spec": "s",
                "objectives": [
                    {
                        "objective": "x",
                        "kind": "error_rate",
                        "compliance": float("nan"),
                        "burn_short": float("nan"),
                        "burn_long": float("nan"),
                        "budget_remaining": float("nan"),
                        "alerting": False,
                    }
                ],
                "alerts": [],
                "exhausted": [],
            },
        )
        text = render_dashboard(data)
        assert "compliance=n/a" in text


class TestArtifacts:
    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifacts(str(tmp_path))

    def test_round_trip_through_artifact_files(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("serving_fleet_completed_total").inc(7)
        registry.gauge("serving_queue_depth", replica="0").set(3)
        registry.export_json(str(tmp_path / ARTIFACT_METRICS))
        (tmp_path / ARTIFACT_SLO).write_text(
            json.dumps(
                {
                    "spec": "serving",
                    "objectives": [],
                    "alerts": [],
                    "exhausted": [],
                }
            )
        )
        (tmp_path / ARTIFACT_LOADGEN).write_text(
            json.dumps(
                {
                    "latency_ms": {"p95": 12.5},
                    "replica_states": {"0": "healthy"},
                }
            )
        )
        (tmp_path / ARTIFACT_TRACE).write_text(
            json.dumps(
                {
                    "name": "request",
                    "trace_id": "trace-x",
                    "duration_s": 0.01,
                    "attrs": {"outcome": "ok"},
                }
            )
            + "\n"
        )
        data = load_artifacts(str(tmp_path))
        assert data.fleet_stats == {"completed": 7.0}
        assert data.queue_depths == {"0": 3.0}
        assert data.latency_ms == {"p95": 12.5}
        assert data.replica_states == {"0": "healthy"}
        text = render_dashboard(data)
        assert "trace-x" in text
        assert "p95" in text

    def test_dashboard_cli_renders_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / ARTIFACT_SLO).write_text(
            json.dumps(
                {
                    "spec": "serving",
                    "objectives": [],
                    "alerts": [],
                    "exhausted": [],
                }
            )
        )
        assert main(["dashboard", "--from", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro dashboard ::" in out
        assert "slo budgets :: spec=serving" in out

    def test_dashboard_cli_fails_on_empty_directory(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        assert main(["dashboard", "--from", str(tmp_path)]) == 2
        assert "dashboard:" in capsys.readouterr().err
