"""Tests for the Morton index-window neighbor search
(repro.core.neighbor) and the reuse policy (repro.core.reuse)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbor import MortonNeighborSearch, window_ranks
from repro.core.reuse import NeighborCache, NeighborReusePolicy
from repro.core.structurize import structurize
from repro.neighbors import false_neighbor_ratio, knn


class TestWindowRanks:
    def test_interior_window_centered(self):
        ranks = window_ranks(np.array([50]), 8, 100)
        assert ranks.tolist() == [[46, 47, 48, 49, 50, 51, 52, 53]]

    def test_start_clamped(self):
        ranks = window_ranks(np.array([1]), 6, 100)
        assert ranks.tolist() == [[0, 1, 2, 3, 4, 5]]

    def test_end_clamped(self):
        ranks = window_ranks(np.array([99]), 6, 100)
        assert ranks.tolist() == [[94, 95, 96, 97, 98, 99]]

    def test_full_window(self):
        ranks = window_ranks(np.array([3]), 10, 10)
        assert ranks.tolist() == [list(range(10))]

    def test_rejects_oversized_window(self):
        with pytest.raises(ValueError):
            window_ranks(np.array([0]), 11, 10)

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            window_ranks(np.array([0]), 0, 10)

    @given(
        rank=st.integers(0, 99),
        window=st.integers(1, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_always_in_range_property(self, rank, window):
        ranks = window_ranks(np.array([rank]), window, 100)
        assert ranks.shape == (1, window)
        assert ranks.min() >= 0
        assert ranks.max() < 100
        assert len(set(ranks[0].tolist())) == window


class TestMortonNeighborSearch:
    def test_shape(self, medium_cloud):
        out = MortonNeighborSearch(8).search(medium_cloud)
        assert out.shape == (1024, 8)

    def test_pure_index_mode_is_window(self, medium_cloud):
        """With W == k the neighbors are exactly the window ranks."""
        order = structurize(medium_cloud)
        searcher = MortonNeighborSearch(6)
        out = searcher.search_ranks(
            medium_cloud, order, np.array([500])
        )
        expected_ranks = np.arange(497, 503)
        assert np.array_equal(
            out[0], order.original_index_of(expected_ranks)
        )

    def test_windowed_mode_picks_closest(self, medium_cloud):
        """With W > k the k closest inside the window are kept, so
        every returned neighbor is at least as close as the pure-index
        pick would guarantee."""
        order = structurize(medium_cloud)
        narrow = MortonNeighborSearch(8, 8).search(
            medium_cloud, order=order
        )
        wide = MortonNeighborSearch(8, 64).search(
            medium_cloud, order=order
        )
        def mean_dist(nbrs):
            gathered = medium_cloud[nbrs]
            return np.linalg.norm(
                gathered - medium_cloud[:, None, :], axis=2
            ).mean()
        assert mean_dist(wide) <= mean_dist(narrow)

    def test_fnr_decreases_with_window(self, medium_cloud):
        """Fig. 15a's monotone trade-off."""
        order = structurize(medium_cloud)
        exact = knn(medium_cloud, medium_cloud, 16)
        fnrs = []
        for mult in (1, 2, 4, 8):
            approx = MortonNeighborSearch(16, 16 * mult).search(
                medium_cloud, order=order
            )
            fnrs.append(false_neighbor_ratio(approx, exact))
        assert fnrs == sorted(fnrs, reverse=True)
        assert fnrs[-1] < fnrs[0]

    def test_query_subset(self, medium_cloud):
        queries = np.array([5, 100, 700])
        out = MortonNeighborSearch(4).search(medium_cloud, queries)
        assert out.shape == (3, 4)

    def test_query_includes_self_region(self, medium_cloud):
        """A windowed (W > k) search must return the query point itself
        among its own neighbors (distance zero)."""
        out = MortonNeighborSearch(4, 16).search(
            medium_cloud, np.arange(50)
        )
        for i in range(50):
            assert i in out[i]

    def test_full_window_equals_exact_knn(self, small_cloud):
        """W == N degenerates to exact k-NN (up to distance ties)."""
        searcher = MortonNeighborSearch(8, len(small_cloud))
        approx = searcher.search(small_cloud)
        exact = knn(small_cloud, small_cloud, 8)
        assert false_neighbor_ratio(approx, exact) < 0.02

    def test_operation_count(self):
        assert MortonNeighborSearch(8).operation_count(100) == 800
        assert MortonNeighborSearch(8, 32).operation_count(100) == 3200

    def test_rejects_window_smaller_than_k(self):
        with pytest.raises(ValueError):
            MortonNeighborSearch(8, 4)

    def test_rejects_oversized_window_at_search(self, small_cloud):
        searcher = MortonNeighborSearch(8, 10_000)
        with pytest.raises(ValueError):
            searcher.search(small_cloud)

    def test_all_points_output_in_original_order(self, small_cloud):
        """search() without query_indices returns row i = neighbors of
        original point i."""
        order = structurize(small_cloud)
        all_out = MortonNeighborSearch(4, 16).search(
            small_cloud, order=order
        )
        sub_out = MortonNeighborSearch(4, 16).search(
            small_cloud, np.array([10, 42]), order=order
        )
        assert np.array_equal(all_out[10], sub_out[0])
        assert np.array_equal(all_out[42], sub_out[1])

    @given(
        seed=st.integers(0, 2**16),
        k=st.integers(1, 8),
        mult=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_valid_indices_property(self, seed, k, mult):
        pts = np.random.default_rng(seed).normal(size=(64, 3))
        out = MortonNeighborSearch(k, min(64, k * mult)).search(pts)
        assert out.shape == (64, k)
        assert out.min() >= 0 and out.max() < 64


class TestReusePolicy:
    def test_distance_one_schedule(self):
        policy = NeighborReusePolicy(reuse_distance=1)
        assert policy.schedule(4) == [
            "compute", "reuse", "compute", "reuse",
        ]

    def test_distance_two_schedule(self):
        policy = NeighborReusePolicy(reuse_distance=2)
        assert policy.schedule(6) == [
            "compute", "reuse", "reuse", "compute", "reuse", "reuse",
        ]

    def test_distance_zero_never_reuses(self):
        policy = NeighborReusePolicy(reuse_distance=0)
        assert policy.schedule(4) == ["compute"] * 4

    def test_first_compute_offset(self):
        policy = NeighborReusePolicy(
            reuse_distance=1, first_compute_module=1
        )
        assert policy.schedule(4) == [
            "compute", "compute", "reuse", "compute",
        ]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NeighborReusePolicy(reuse_distance=-1)

    def test_rejects_negative_module(self):
        policy = NeighborReusePolicy()
        with pytest.raises(ValueError):
            policy.should_reuse(-1)


class TestNeighborCache:
    def test_store_and_load(self, rng):
        cache = NeighborCache()
        idx = rng.integers(0, 100, (50, 8))
        cache.store(idx)
        assert np.array_equal(cache.load(), idx)

    def test_empty_load_raises(self):
        with pytest.raises(RuntimeError):
            NeighborCache().load()

    def test_is_empty_lifecycle(self, rng):
        cache = NeighborCache()
        assert cache.is_empty
        cache.store(rng.integers(0, 10, (4, 2)))
        assert not cache.is_empty
        cache.clear()
        assert cache.is_empty

    def test_memory_bytes(self, rng):
        cache = NeighborCache()
        assert cache.memory_bytes == 0
        idx = np.zeros((1024, 20), dtype=np.int64)
        cache.store(idx)
        assert cache.memory_bytes == 1024 * 20 * 8

    def test_paper_budget(self):
        """Sec. 5.2.3: per-batch reused search data <= 160 KB.  A
        1024-point, 20-neighbor int16 index matrix fits."""
        cache = NeighborCache()
        cache.store(np.zeros((4096, 20), dtype=np.int16))
        assert cache.memory_bytes <= 160 * 1024

    def test_rejects_flat_array(self):
        with pytest.raises(ValueError):
            NeighborCache().store(np.zeros(10, dtype=np.int64))
