"""Tests for the fault-tolerant serving fleet (PR 6).

Covers the retry/hedge policies, the replica health state machine
(including eject -> probation -> re-admit), consistent-hash routing,
deterministic chaos injection, and the fleet itself: zero lost
requests when a replica dies mid-load, deadline-aware retries, hedged
dispatch, brownout shedding, and byte-identical reports and retry
traces across same-seed runs — all in virtual time.

PR 7 adds the trace-propagation contract: one trace id per request,
stitched across queue/batch/attempt/kernel-stage spans on every
replica it touched, with zero orphan spans — under retries, hedges,
and real threads alike.
"""

import json

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.nn import PointNet2Segmentation, SAConfig
from repro.observability import Tracer, find_orphans, spans_by_trace
from repro.observability.clock import FixedClock
from repro.observability.metrics import MetricsRegistry
from repro.pipeline import EdgePCPipeline
from repro.serving import (
    BrownoutError,
    ChaosHarness,
    ChaosSchedule,
    DeadlineExceededError,
    FleetConfig,
    FleetLoadGenerator,
    HealthPolicy,
    HedgePolicy,
    LoadGenConfig,
    NoHealthyReplicaError,
    ReplicaFaultError,
    ReplicaHealth,
    RetryExhaustedError,
    RetryPolicy,
    Router,
    ServerFleet,
    ServingConfig,
    parse_chaos_event,
)

N_POINTS = 32


def _pipeline(metrics=None, seed=0):
    model = PointNet2Segmentation(
        num_classes=3,
        sa_configs=(SAConfig(0.5, 4, 1.5, (8, 8)),),
        edgepc=EdgePCConfig.paper_default(),
        head_hidden=8,
        rng=np.random.default_rng(seed),
    )
    return EdgePCPipeline(model, metrics=metrics)


def _fleet(replicas=3, clock=None, config=None, serving=None, metrics=None):
    clock = clock if clock is not None else FixedClock(0.0)
    fleet = ServerFleet(
        [_pipeline(metrics=None, seed=0) for _ in range(replicas)],
        config=config or FleetConfig(),
        serving_config=serving
        or ServingConfig(max_batch_size=4, max_wait_ms=20.0, workers=1),
        clock=clock,
        metrics=metrics,
    )
    return fleet, clock


def _drive(fleet, clock, request, step_s=0.01, max_steps=400):
    """Advance virtual time in fixed steps, pumping every replica and
    servicing fleet timers, until the request's future resolves."""
    for _ in range(max_steps):
        if request.future.done():
            return
        clock.advance(step_s)
        now = clock()
        for index in range(len(fleet.replicas)):
            fleet.pump_replica(index)
        fleet.service(now)
    raise AssertionError("request did not resolve in virtual time")


class TestRetryPolicy:
    def test_backoff_grows_and_caps_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_backoff_s=0.1,
            multiplier=2.0,
            max_backoff_s=0.5,
            jitter=0.0,
        )
        values = [policy.backoff_s(a) for a in (1, 2, 3, 4, 5)]
        assert values == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        first = policy.backoff_s(1, token="r1")
        assert first == policy.backoff_s(1, token="r1")
        assert 0.05 <= first <= 0.15
        assert policy.backoff_s(1, token="r2") != first

    def test_next_backoff_stops_at_max_attempts(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.next_backoff(1, "r1") is not None
        assert policy.next_backoff(2, "r1") is None

    def test_next_backoff_honors_remaining_deadline(self):
        policy = RetryPolicy(
            max_attempts=5, base_backoff_s=0.1, jitter=0.0
        )
        assert policy.next_backoff(1, "r1", remaining_s=1.0) == 0.1
        assert policy.next_backoff(1, "r1", remaining_s=0.05) is None


class TestHedgePolicy:
    def test_floor_until_enough_samples(self):
        policy = HedgePolicy(min_delay_s=0.05, min_samples=4)
        assert policy.delay_s([]) == 0.05
        assert policy.delay_s([0.2, 0.2, 0.2]) == 0.05

    def test_quantile_with_floor(self):
        policy = HedgePolicy(
            quantile=0.5, min_delay_s=0.05, min_samples=2
        )
        assert policy.delay_s([0.2, 0.2, 0.2, 0.2]) == 0.2
        assert policy.delay_s([0.001, 0.001, 0.001, 0.001]) == 0.05


class TestReplicaHealth:
    def _health(self, **overrides):
        policy = HealthPolicy(
            window_s=2.0,
            min_samples=2,
            degrade_failure_rate=0.2,
            eject_failure_rate=0.6,
            eject_consecutive_failures=2,
            eject_s=0.5,
            probation_successes=2,
            recover_successes=2,
            **overrides,
        )
        return ReplicaHealth(0, policy=policy)

    def test_starts_healthy(self):
        assert self._health().state == "healthy"

    def test_consecutive_failures_eject(self):
        health = self._health()
        health.record_failure(0.1, "fault")
        health.record_failure(0.2, "fault")
        assert health.state == "ejected"
        assert [t[2] for t in health.transitions] == ["ejected"]

    def test_eject_probation_readmit_cycle(self):
        health = self._health()
        health.force_eject(0.0, "killed")
        assert not health.routable(0.4)
        assert health.routable(0.6)
        assert health.state == "probation"
        health.record_success(0.7, 0.01)
        health.record_success(0.8, 0.01)
        assert health.state == "healthy"
        states = [t[2] for t in health.transitions]
        assert states == ["ejected", "probation", "healthy"]

    def test_probation_failure_re_ejects(self):
        health = self._health()
        health.force_eject(0.0, "killed")
        health.tick(0.6)
        assert health.state == "probation"
        health.record_failure(0.7, "fault")
        assert health.state == "ejected"

    def test_failure_rate_degrades_then_window_recovers(self):
        health = self._health()
        health.record_success(0.1, 0.01)
        health.record_failure(0.2, "fault")
        assert health.state == "degraded"
        health.record_success(3.0, 0.01)
        health.record_success(3.1, 0.01)
        assert health.state == "healthy"

    def test_observe_degrades_on_queue_depth_and_breaker(self):
        health = self._health(degrade_queue_depth=4)
        health.observe(0.1, queue_depth=8)
        assert health.state == "degraded"
        other = self._health()
        other.observe(0.1, breaker_open=True)
        assert other.state == "degraded"


class TestRouter:
    def test_same_key_same_route(self):
        assert Router(3).replica_for("tenant-1") == Router(
            3
        ).replica_for("tenant-1")

    def test_preference_covers_all_replicas_once(self):
        order = Router(4).preference("tenant-9")
        assert sorted(order) == [0, 1, 2, 3]

    def test_keys_spread_across_replicas(self):
        router = Router(3)
        first = {
            router.replica_for(f"tenant-{i}") for i in range(32)
        }
        assert len(first) > 1


class TestChaosSchedule:
    def test_parse_event_specs(self):
        event = parse_chaos_event("kill:1:0.8")
        assert (event.action, event.replica, event.at_s) == (
            "kill",
            1,
            0.8,
        )
        slow = parse_chaos_event("slow:0:1.5:8.0")
        assert slow.factor == 8.0
        with pytest.raises(ValueError):
            parse_chaos_event("explode:0:1.0")

    def test_standard_schedule_kills_then_recovers(self):
        schedule = ChaosSchedule.standard(3, 2.0)
        actions = [e.action for e in schedule.ordered()]
        assert actions == ["kill", "recover"]
        assert len(ChaosSchedule.standard(1, 2.0)) == 0


class TestFleetVirtual:
    def test_submit_and_complete(self, rng):
        fleet, clock = _fleet()
        request = fleet.submit(
            rng.random((N_POINTS, 3)), tenant="tenant-1"
        )
        _drive(fleet, clock, request)
        result = request.future.result()
        assert result.prediction.shape == (N_POINTS,)
        assert fleet.completed == 1

    def test_kill_mid_flight_retries_on_another_replica(self, rng):
        fleet, clock = _fleet()
        request = fleet.submit(
            rng.random((N_POINTS, 3)),
            tenant="tenant-1",
            deadline_s=2.0,
        )
        primary = fleet.router.preference("tenant-1")[0]
        shed = fleet.kill_replica(primary)
        assert shed == 1
        _drive(fleet, clock, request)
        assert request.future.result() is not None
        assert fleet.retries >= 1
        assert fleet.completed == 1
        assert request.tried[0] == primary
        assert len(request.tried) >= 2  # the retry ran elsewhere
        events = [e.event for e in fleet.trace]
        assert "retry" in events

    def test_all_replicas_erroring_exhausts_retries_typed(self, rng):
        fleet, clock = _fleet(
            config=FleetConfig(retry=RetryPolicy(max_attempts=2))
        )
        for index in range(len(fleet.replicas)):
            fleet.error_replica(index)
        request = fleet.submit(
            rng.random((N_POINTS, 3)), tenant="tenant-1"
        )
        _drive(fleet, clock, request)
        with pytest.raises(RetryExhaustedError) as err:
            request.future.result()
        assert err.value.reason == "retry_exhausted"
        assert isinstance(err.value.__cause__, ReplicaFaultError)
        assert fleet.failed == 1

    def test_deadline_expiry_is_typed_and_counted(self, rng):
        fleet, clock = _fleet()
        request = fleet.submit(
            rng.random((N_POINTS, 3)),
            tenant="tenant-1",
            deadline_s=0.005,
        )
        _drive(fleet, clock, request)
        with pytest.raises(DeadlineExceededError):
            request.future.result()
        assert fleet.expired == 1

    def test_no_routable_replica_rejects_at_the_door(self, rng):
        fleet, clock = _fleet()
        for index in range(len(fleet.replicas)):
            fleet.kill_replica(index)
        with pytest.raises(NoHealthyReplicaError) as err:
            fleet.submit(rng.random((N_POINTS, 3)))
        assert err.value.reason == "no_healthy_replica"
        assert fleet.rejection_reasons["no_healthy_replica"] == 1

    def test_brownout_sheds_low_priority_only(self, rng):
        fleet, clock = _fleet()
        fleet.kill_replica(0)
        fleet.kill_replica(1)
        assert fleet.brownout_active(clock())
        with pytest.raises(BrownoutError):
            fleet.submit(
                rng.random((N_POINTS, 3)),
                tenant="tenant-low",
                priority=0,
            )
        request = fleet.submit(
            rng.random((N_POINTS, 3)), tenant="tenant-high"
        )
        _drive(fleet, clock, request)
        assert request.future.result() is not None
        assert fleet.rejection_reasons["brownout"] == 1

    def test_hedge_fires_and_cancels_loser(self, rng):
        fleet, clock = _fleet(
            config=FleetConfig(
                hedge=HedgePolicy(min_delay_s=0.03, min_samples=4)
            )
        )
        request = fleet.submit(
            rng.random((N_POINTS, 3)), tenant="tenant-1"
        )
        primary = fleet.router.preference("tenant-1")[0]
        fleet.stall_replica(primary)
        _drive(fleet, clock, request)
        assert request.future.result() is not None
        assert fleet.hedges == 1
        assert fleet.hedge_wins == 1
        assert fleet.hedge_cancelled == 1
        assert request.winner.endswith(".a2")
        events = [e.event for e in fleet.trace]
        assert "hedge" in events and "hedge_cancel" in events


def _chaos_run(seed=0):
    metrics = MetricsRegistry()
    clock = FixedClock(0.0)
    fleet = ServerFleet(
        [_pipeline(seed=0) for _ in range(3)],
        config=FleetConfig(
            default_deadline_ms=500.0,
            retry=RetryPolicy(max_attempts=4),
        ),
        serving_config=ServingConfig(
            max_batch_size=4, max_wait_ms=20.0, workers=1
        ),
        clock=clock,
        metrics=metrics,
    )
    schedule = ChaosSchedule.standard(3, 2.0)
    harness = ChaosHarness(fleet, schedule, metrics=metrics)
    config = LoadGenConfig(
        duration_s=2.0, rate=40.0, deadline_ms=500.0, seed=seed
    )
    generator = FleetLoadGenerator(
        fleet, config, clock=clock, chaos=harness
    )
    report = generator.run()
    return report, fleet, harness


class TestChaosUnderLoad:
    def test_kill_one_of_three_loses_nothing(self):
        report, fleet, harness = _chaos_run()
        assert len(harness.applied) == 2
        assert report.lost == 0
        assert report.submitted > 0
        # Every admitted request reached a terminal state.
        assert report.admitted == (
            report.completed + report.failed + report.expired
        )
        # The kill actually disrupted traffic and the fleet recovered.
        assert report.retries >= 1
        assert report.completed > 0.9 * report.admitted

    def test_ejected_replica_is_readmitted_after_probation(self):
        report, fleet, harness = _chaos_run()
        assert report.replica_states == {
            "0": "healthy",
            "1": "healthy",
            "2": "healthy",
        }
        killed = fleet.replicas[1].health
        states = [t[2] for t in killed.transitions]
        assert "ejected" in states
        assert states[-1] == "healthy"

    def test_same_seed_same_schedule_byte_identical(self):
        report_a, fleet_a, _ = _chaos_run()
        report_b, fleet_b, _ = _chaos_run()
        assert json.dumps(
            report_a.to_dict(), sort_keys=True
        ) == json.dumps(report_b.to_dict(), sort_keys=True)
        trace_a = [e.to_dict() for e in fleet_a.trace]
        trace_b = [e.to_dict() for e in fleet_b.trace]
        assert json.dumps(trace_a) == json.dumps(trace_b)
        assert any(e.event == "retry" for e in fleet_a.trace)

    def test_different_seed_changes_the_report(self):
        report_a, _, _ = _chaos_run(seed=0)
        report_b, _, _ = _chaos_run(seed=1)
        assert report_a.to_dict() != report_b.to_dict()


def _traced_chaos_run(seed=7):
    """Virtual-time chaos run with tracing on: an erroring replica
    (forces retries) plus a slowed replica (forces hedges)."""
    metrics = MetricsRegistry()
    clock = FixedClock(0.0)
    tracer = Tracer(clock=clock)
    fleet = ServerFleet(
        [_pipeline(seed=0) for _ in range(3)],
        config=FleetConfig(
            default_deadline_ms=500.0,
            retry=RetryPolicy(max_attempts=4),
            hedge=HedgePolicy(min_delay_s=0.015, min_samples=4),
        ),
        serving_config=ServingConfig(
            max_batch_size=4, max_wait_ms=20.0, workers=1
        ),
        clock=clock,
        tracer=tracer,
        metrics=metrics,
    )
    schedule = ChaosSchedule.from_specs(
        ["error:1:0.05", "slow:2:0.1:8", "recover:1:0.4", "recover:2:0.6"]
    )
    harness = ChaosHarness(fleet, schedule, metrics=metrics)
    config = LoadGenConfig(duration_s=0.8, rate=60.0, seed=seed)
    report = FleetLoadGenerator(
        fleet, config, clock=clock, chaos=harness
    ).run()
    return report, fleet, tracer


class TestTracePropagation:
    def test_every_result_carries_its_trace_id(self, rng):
        clock = FixedClock(0.0)
        tracer = Tracer(clock=clock)
        fleet = ServerFleet(
            [_pipeline(seed=0) for _ in range(3)],
            serving_config=ServingConfig(
                max_batch_size=4, max_wait_ms=20.0, workers=1
            ),
            clock=clock,
            tracer=tracer,
        )
        requests = [
            fleet.submit(
                rng.random((N_POINTS, 3)), tenant=f"tenant-{i}"
            )
            for i in range(3)
        ]
        for request in requests:
            _drive(fleet, clock, request)
            result = request.future.result()
            assert result.trace_id == f"trace-{request.request_id}"
            assert request.ctx is not None
            assert request.ctx.trace_id == result.trace_id
            assert request.ctx.is_root

    def test_one_stitched_trace_per_request_no_orphans(self):
        report, fleet, tracer = _traced_chaos_run()
        # The scenario must actually exercise the hard paths.
        assert report.retries >= 1
        assert fleet.hedges >= 1
        records = [span.to_dict() for span in tracer.finished()]
        assert find_orphans(records) == []
        grouped = spans_by_trace(records)
        roots = [
            r
            for r in records
            if r.get("name") == "request" and r.get("trace_id")
        ]
        # One root span per trace, one trace per admitted request.
        assert len(roots) == len(grouped)
        by_id = {r["trace_id"]: r for r in roots}
        assert set(by_id) == set(grouped)
        # Every trace covers the full request lifecycle.
        for trace_id, spans in grouped.items():
            names = {s["name"] for s in spans}
            assert "request" in names
            if by_id[trace_id]["attrs"]["outcome"] == "ok":
                assert "request.queue" in names
                assert "request.batch" in names
                assert "request.sample" in names

    def test_multi_attempt_traces_span_replicas(self):
        report, fleet, tracer = _traced_chaos_run()
        records = [span.to_dict() for span in tracer.finished()]
        grouped = spans_by_trace(records)
        multi = {
            trace_id: spans
            for trace_id, spans in grouped.items()
            if sum(
                1
                for s in spans
                if s["name"] == "request.attempt"
            )
            >= 2
        }
        assert multi, "chaos scenario produced no retried request"
        for spans in multi.values():
            replicas = {
                s["attrs"]["replica"]
                for s in spans
                if s["name"] == "request.attempt"
            }
            assert len(replicas) >= 2

    def test_retry_events_carry_trace_ids(self):
        report, fleet, tracer = _traced_chaos_run()
        assert fleet.trace, "no retry events recorded"
        for event in fleet.trace:
            assert event.trace_id.startswith("trace-"), event
            assert event.to_dict()["trace_id"] == event.trace_id

    def test_same_seed_trace_export_byte_identical(self):
        _, _, tracer_a = _traced_chaos_run()
        _, _, tracer_b = _traced_chaos_run()
        dump_a = json.dumps(
            [s.to_dict() for s in tracer_a.finished()],
            sort_keys=True,
        )
        dump_b = json.dumps(
            [s.to_dict() for s in tracer_b.finished()],
            sort_keys=True,
        )
        assert dump_a == dump_b


class TestFleetThreaded:
    def test_threaded_smoke_completes_all(self, rng):
        fleet = ServerFleet(
            [_pipeline(seed=0) for _ in range(3)],
            serving_config=ServingConfig(
                max_batch_size=4, max_wait_ms=5.0, workers=1
            ),
        )
        with fleet:
            requests = [
                fleet.submit(
                    rng.random((N_POINTS, 3)), tenant=f"tenant-{i}"
                )
                for i in range(6)
            ]
        for request in requests:
            assert request.future.result(timeout=10.0) is not None
        assert fleet.completed == 6

    def test_threaded_traces_stitch_under_faults(self, rng):
        tracer = Tracer()
        fleet = ServerFleet(
            [_pipeline(seed=0) for _ in range(3)],
            config=FleetConfig(
                retry=RetryPolicy(
                    max_attempts=4, base_backoff_s=0.005
                ),
                # 1 ms hedge floor against a 5 ms batch window: every
                # request earns a hedge from the maintenance thread.
                hedge=HedgePolicy(min_delay_s=0.001),
            ),
            serving_config=ServingConfig(
                max_batch_size=4, max_wait_ms=5.0, workers=1
            ),
            tracer=tracer,
        )

        def tenants_with_primary(replica_index, count):
            chosen = []
            for i in range(256):
                tenant = f"tenant-{i}"
                if fleet.router.preference(tenant)[0] == (
                    replica_index
                ):
                    chosen.append(tenant)
                    if len(chosen) == count:
                        return chosen
            raise AssertionError("no tenants route there")

        with fleet:
            # Burst at one replica's queue, then kill it: the shed
            # backlog retries on the survivors across real threads.
            requests = [
                fleet.submit(rng.random((N_POINTS, 3)), tenant=t)
                for t in tenants_with_primary(0, 8)
            ]
            fleet.kill_replica(0)
            results = [
                r.future.result(timeout=10.0) for r in requests
            ]
        assert fleet.stats()["retries"] >= 1
        assert fleet.hedges >= 1
        for request, result in zip(requests, results):
            assert result.trace_id == f"trace-{request.request_id}"
        records = [span.to_dict() for span in tracer.finished()]
        assert find_orphans(records) == []
        grouped = spans_by_trace(records)
        multi_attempt = [
            spans
            for spans in grouped.values()
            if sum(
                1
                for s in spans
                if s["name"] == "request.attempt"
            )
            >= 2
        ]
        assert multi_attempt, "kill shed no in-flight attempts"
