"""Tests for the KITTI-like LiDAR simulation (repro.datasets.outdoor),
including the ray-casting substrate."""

import numpy as np
import pytest

from repro.datasets import KITTILike, lidar_sweep
from repro.datasets.outdoor import (
    LABEL_BUILDING,
    LABEL_CAR,
    LABEL_GROUND,
    NUM_OUTDOOR_CLASSES,
    _ray_aabb,
    _ray_plane_z0,
    sweep_directions,
)


class TestRayPrimitives:
    def test_plane_hit_distance(self):
        origins = np.array([[0.0, 0.0, 2.0]])
        dirs = np.array([[0.0, 0.0, -1.0]])
        assert _ray_plane_z0(origins, dirs)[0] == pytest.approx(2.0)

    def test_plane_miss_upward(self):
        origins = np.array([[0.0, 0.0, 2.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        assert np.isinf(_ray_plane_z0(origins, dirs)[0])

    def test_plane_parallel(self):
        origins = np.array([[0.0, 0.0, 2.0]])
        dirs = np.array([[1.0, 0.0, 0.0]])
        assert np.isinf(_ray_plane_z0(origins, dirs)[0])

    def test_aabb_hit(self):
        origins = np.array([[0.0, 0.0, 0.0]])
        dirs = np.array([[1.0, 0.0, 0.0]])
        t = _ray_aabb(
            origins, dirs,
            np.array([5.0, -1.0, -1.0]), np.array([7.0, 1.0, 1.0]),
        )
        assert t[0] == pytest.approx(5.0)

    def test_aabb_miss(self):
        origins = np.array([[0.0, 0.0, 0.0]])
        dirs = np.array([[0.0, 1.0, 0.0]])
        t = _ray_aabb(
            origins, dirs,
            np.array([5.0, -1.0, -1.0]), np.array([7.0, 1.0, 1.0]),
        )
        assert np.isinf(t[0])

    def test_aabb_from_inside(self):
        origins = np.array([[6.0, 0.0, 0.0]])
        dirs = np.array([[1.0, 0.0, 0.0]])
        t = _ray_aabb(
            origins, dirs,
            np.array([5.0, -1.0, -1.0]), np.array([7.0, 1.0, 1.0]),
        )
        assert t[0] == pytest.approx(1.0)  # exits the far face

    def test_sweep_directions_unit(self):
        dirs = sweep_directions(4, 16)
        assert dirs.shape == (64, 3)
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)


class TestLidarSweep:
    def test_labels_and_ranges(self, rng):
        sweep = lidar_sweep(rng)
        assert sweep.labels.max() < NUM_OUTDOOR_CLASSES
        ranges = np.linalg.norm(
            sweep.xyz - np.array([0, 0, 1.8]), axis=1
        )
        assert ranges.max() <= 30.0 + 0.5  # max_range + noise

    def test_ground_dominates(self, rng):
        sweep = lidar_sweep(rng)
        counts = np.bincount(
            sweep.labels, minlength=NUM_OUTDOOR_CLASSES
        )
        assert counts[LABEL_GROUND] > counts.sum() / 2

    def test_ground_points_near_z0(self, rng):
        sweep = lidar_sweep(rng, noise_sigma=0.0)
        ground_z = sweep.xyz[sweep.labels == LABEL_GROUND][:, 2]
        assert np.abs(ground_z).max() < 1e-6

    def test_cars_occlude_ground(self, rng):
        """Car points sit above the ground plane at their range."""
        sweep = lidar_sweep(rng, noise_sigma=0.0)
        car_z = sweep.xyz[sweep.labels == LABEL_CAR][:, 2]
        if car_z.size:
            assert car_z.min() > -1e-6
            assert car_z.max() <= 1.5 + 1e-6

    def test_building_vertical_extent(self, rng):
        sweep = lidar_sweep(rng, noise_sigma=0.0)
        building = sweep.xyz[sweep.labels == LABEL_BUILDING]
        if building.shape[0] > 10:
            assert building[:, 2].max() > 1.9  # taller than cars

    def test_radial_density_falloff(self, rng):
        """The signature LiDAR property: more returns close by."""
        sweep = lidar_sweep(rng)
        r = np.hypot(sweep.xyz[:, 0], sweep.xyz[:, 1])
        near = (r < 10).sum()
        far = ((r >= 10) & (r < 20)).sum()
        # The far annulus is 3x the area but has fewer points per m^2.
        assert near / 100 > far / 300

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            lidar_sweep(rng, num_beams=0)
        with pytest.raises(ValueError):
            lidar_sweep(rng, max_range=-1.0)


class TestKITTILike:
    def test_fixed_size(self):
        ds = KITTILike(num_clouds=2, points_per_cloud=2048)
        assert len(ds[0]) == 2048
        assert len(ds[1]) == 2048

    def test_deterministic(self):
        a = KITTILike(num_clouds=1, points_per_cloud=1024, seed=5)
        b = KITTILike(num_clouds=1, points_per_cloud=1024, seed=5)
        assert np.array_equal(a[0].xyz, b[0].xyz)

    def test_scenes_differ(self):
        ds = KITTILike(num_clouds=2, points_per_cloud=1024)
        assert not np.array_equal(ds[0].xyz, ds[1].xyz)

    def test_morton_locality_strong_on_sweeps(self):
        """Z-ordering works well on the ring-structured geometry too
        (the property EdgePC needs to generalize outdoors)."""
        from repro.core import structurize, structuredness

        cloud = KITTILike(num_clouds=1, points_per_cloud=2048)[0]
        assert structuredness(
            structurize(cloud.xyz), cloud.xyz
        ) < 0.3

    def test_window_search_quality_outdoors(self):
        """The index-window search stays useful on outdoor sweeps."""
        from repro.core import MortonNeighborSearch, structurize
        from repro.neighbors import false_neighbor_ratio, knn

        cloud = KITTILike(num_clouds=1, points_per_cloud=2048)[0].xyz
        order = structurize(cloud)
        queries = np.arange(0, 2048, 8)
        approx = MortonNeighborSearch(16, 64).search(
            cloud, queries, order
        )
        exact = knn(cloud[queries], cloud, 16)
        assert false_neighbor_ratio(approx, exact) < 0.5
