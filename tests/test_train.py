"""Tests for training metrics and the trainer (repro.train)."""

import numpy as np
import pytest

from repro.train import (
    Trainer,
    accuracy_drop,
    confusion_matrix,
    mean_iou,
    overall_accuracy,
    per_class_accuracy,
)
from repro.datasets import Batch


class TestMetrics:
    def test_overall_accuracy(self):
        assert overall_accuracy(
            np.array([1, 2, 3]), np.array([1, 0, 3])
        ) == pytest.approx(2 / 3)

    def test_overall_accuracy_2d(self):
        p = np.array([[0, 1], [1, 1]])
        t = np.array([[0, 1], [0, 1]])
        assert overall_accuracy(p, t) == 0.75

    def test_accuracy_rejects_mismatch(self):
        with pytest.raises(ValueError):
            overall_accuracy(np.zeros(3), np.zeros(4))

    def test_accuracy_rejects_empty(self):
        with pytest.raises(ValueError):
            overall_accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        m = confusion_matrix(
            np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3
        )
        assert m[0, 0] == 1
        assert m[1, 1] == 1
        assert m[2, 1] == 1  # true 2 predicted 1
        assert m[2, 2] == 1
        assert m.sum() == 4

    def test_confusion_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([3]), np.array([0]), 3)

    def test_miou_perfect(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert mean_iou(labels, labels, 3) == 1.0

    def test_miou_half(self):
        predictions = np.array([0, 0])
        targets = np.array([0, 1])
        # Class 0: inter 1 / union 2; class 1: 0 / 1.
        assert mean_iou(predictions, targets, 2) == pytest.approx(0.25)

    def test_miou_ignores_absent_classes(self):
        predictions = np.array([0, 0])
        targets = np.array([0, 0])
        assert mean_iou(predictions, targets, 5) == 1.0

    def test_miou_no_ignore(self):
        predictions = np.array([0])
        targets = np.array([0])
        assert mean_iou(predictions, targets, 2, ignore_empty=False) == (
            pytest.approx(0.5)
        )

    def test_per_class_accuracy(self):
        predictions = np.array([0, 0, 1, 1])
        targets = np.array([0, 1, 1, 1])
        out = per_class_accuracy(predictions, targets, 3)
        assert out[0] == 1.0
        assert out[1] == pytest.approx(2 / 3)
        assert np.isnan(out[2])

    def test_accuracy_drop(self):
        assert accuracy_drop(0.9, 0.88) == pytest.approx(0.02)

    def test_accuracy_drop_rejects_bad_range(self):
        with pytest.raises(ValueError):
            accuracy_drop(1.5, 0.5)


class _ToyModel:
    """A minimal 'model' over the Module API for trainer tests:
    per-cloud logits = learned linear map of the mean coordinate."""

    def __init__(self, num_classes=2, seed=0):
        from repro.nn.layers import Linear, Module

        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.linear = Linear(
                    3, num_classes, rng=np.random.default_rng(seed)
                )

            def forward(self, xyz):
                from repro.nn.autograd import Tensor

                mean = np.asarray(xyz).mean(axis=1)
                return self.linear(Tensor(mean))

        self.inner = Inner()

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __call__(self, xyz):
        return self.inner(xyz)


def _separable_batches(n_batches=4, batch=8, seed=0):
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(n_batches):
        labels = rng.integers(0, 2, batch)
        offsets = np.where(labels == 0, -1.0, 1.0)
        xyz = rng.normal(size=(batch, 16, 3)) * 0.1
        xyz[:, :, 0] += offsets[:, None]
        batches.append(Batch(xyz=xyz, labels=labels))
    return batches


def _fast_trainer(model):
    from repro.nn.optim import Adam

    return Trainer(model.inner, Adam(model.inner.parameters(), lr=0.05))


class TestTrainer:
    def test_loss_decreases(self):
        model = _ToyModel()
        trainer = _fast_trainer(model)
        batches = _separable_batches()
        result = trainer.fit(batches, epochs=20)
        assert result.losses[-1] < result.losses[0]
        assert result.final_loss == result.losses[-1]

    def test_learns_separable_problem(self):
        model = _ToyModel()
        trainer = _fast_trainer(model)
        batches = _separable_batches()
        trainer.fit(batches, epochs=30)
        assert trainer.evaluate(batches).accuracy > 0.9

    def test_evaluate_reports_miou(self):
        model = _ToyModel()
        trainer = Trainer(model.inner)
        batches = _separable_batches()
        result = trainer.evaluate(batches, num_classes=2)
        assert result.miou is not None
        assert 0 <= result.miou <= 1

    def test_eval_restores_train_mode(self):
        model = _ToyModel()
        trainer = Trainer(model.inner)
        trainer.evaluate(_separable_batches())
        assert model.inner.training

    def test_rejects_empty_batches(self):
        trainer = Trainer(_ToyModel().inner)
        with pytest.raises(ValueError):
            trainer.train_epoch([])
        with pytest.raises(ValueError):
            trainer.fit([], epochs=1)
        with pytest.raises(ValueError):
            trainer.evaluate([])

    def test_rejects_zero_epochs(self):
        trainer = Trainer(_ToyModel().inner)
        with pytest.raises(ValueError):
            trainer.fit(_separable_batches(), epochs=0)

    def test_deterministic_training(self):
        batches = _separable_batches()
        results = []
        for _ in range(2):
            model = _ToyModel(seed=1)
            trainer = _fast_trainer(model)
            trainer.fit(batches, epochs=3, shuffle_seed=5)
            results.append(trainer.evaluate(batches).accuracy)
        assert results[0] == results[1]


class TestScheduler:
    def test_fit_steps_scheduler_per_epoch(self):
        from repro.nn.optim import Adam, StepLR

        model = _ToyModel()
        opt = Adam(model.inner.parameters(), lr=1.0)
        trainer = Trainer(model.inner, opt)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        trainer.fit(_separable_batches(), epochs=4, scheduler=sched)
        assert opt.lr == pytest.approx(0.25)
