"""Tests for the serving subsystem (PR 5).

Covers the admission queue, the micro-batcher's bucket/trigger logic,
threaded graceful shutdown (zero lost requests), workspace ownership
under threads, fault injection through the guarded server, and the
deterministic virtual-time load generator.
"""

import threading

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.core.workspace import Workspace, WorkspaceOwnershipError
from repro.nn import PointNet2Segmentation, SAConfig
from repro.observability import Tracer, find_orphans, spans_by_trace
from repro.observability.clock import FixedClock
from repro.observability.metrics import MetricsRegistry
from repro.pipeline import EdgePCPipeline
from repro.serving.server import REQUEST_LATENCY_BUCKETS
from repro.robustness import (
    FaultInjector,
    FaultSpec,
    GuardedPipeline,
    GuardThresholds,
    ValidationPolicy,
)
from repro.serving import (
    DeadlineExceededError,
    DrainTimeoutError,
    InferenceServer,
    LoadGenConfig,
    LoadGenerator,
    MicroBatcher,
    QueueClosedError,
    QueueFullError,
    RequestQueue,
    ServingConfig,
    ServingRequest,
)

N_POINTS = 32


def _pipeline(metrics=None, seed=0):
    model = PointNet2Segmentation(
        num_classes=3,
        sa_configs=(SAConfig(0.5, 4, 1.5, (8, 8)),),
        edgepc=EdgePCConfig.paper_default(),
        head_hidden=8,
        rng=np.random.default_rng(seed),
    )
    return EdgePCPipeline(model, metrics=metrics)


def _request(rng, request_id="r1", n=N_POINTS, arrival=0.0, deadline=None):
    return ServingRequest(
        request_id=request_id,
        cloud=rng.random((n, 3)),
        arrival_s=arrival,
        deadline_s=deadline,
    )


class TestRequestQueue:
    def test_admits_up_to_depth_then_rejects_typed(self, rng):
        registry = MetricsRegistry()
        queue = RequestQueue(max_depth=2, metrics=registry)
        queue.put(_request(rng, "a"))
        queue.put(_request(rng, "b"))
        with pytest.raises(QueueFullError) as err:
            queue.put(_request(rng, "c"))
        assert err.value.reason == "queue_full"
        assert queue.admitted == 2
        assert queue.rejected == 1
        assert registry.counter("serving_admitted_total").value == 2
        assert (
            registry.counter(
                "serving_rejected_total", reason="queue_full"
            ).value
            == 1
        )
        assert registry.gauge("serving_queue_depth").value == 2.0

    def test_closed_queue_rejects_typed(self, rng):
        queue = RequestQueue(max_depth=4)
        queue.close()
        with pytest.raises(QueueClosedError) as err:
            queue.put(_request(rng))
        assert err.value.reason == "closed"
        assert queue.closed

    def test_pop_pending_is_fifo_and_backlog_survives_until_release(
        self, rng
    ):
        registry = MetricsRegistry()
        queue = RequestQueue(max_depth=4, metrics=registry)
        for name in ("a", "b", "c"):
            queue.put(_request(rng, name))
        with queue.condition:
            popped = queue.pop_pending()
        assert [r.request_id for r in popped] == ["a", "b", "c"]
        # Popped-but-undispatched requests still occupy the admission
        # backlog; only release() frees their slots.
        assert queue.depth == 3
        with queue.condition:
            queue.release(3)
        assert queue.depth == 0
        assert registry.gauge("serving_queue_depth").value == 0.0

    def test_backlog_bound_covers_bucketed_requests(self, rng):
        # Requests moved into batcher buckets still count against
        # max_depth: admission bounds the whole pre-dispatch backlog.
        clock = FixedClock(0.0)
        queue = RequestQueue(max_depth=2, clock=clock)
        batcher = MicroBatcher(
            queue, max_batch_size=8, max_wait_s=1.0, clock=clock
        )
        queue.put(_request(rng, "a"))
        queue.put(_request(rng, "b"))
        assert batcher.ingest() == 2  # queue list is empty now...
        with pytest.raises(QueueFullError):
            queue.put(_request(rng, "c"))  # ...but the bound holds
        clock.advance(1.0)
        assert batcher.poll() is not None  # dispatch frees the slots
        queue.put(_request(rng, "d"))


class TestMicroBatcher:
    def _batcher(self, clock, registry=None, **kwargs):
        queue = RequestQueue(
            max_depth=64, clock=clock, metrics=registry
        )
        defaults = dict(max_batch_size=4, max_wait_s=0.05)
        defaults.update(kwargs)
        return queue, MicroBatcher(
            queue, clock=clock, metrics=registry, **defaults
        )

    def test_full_bucket_flushes_immediately(self, rng):
        clock = FixedClock(0.0)
        queue, batcher = self._batcher(clock)
        for i in range(4):
            queue.put(_request(rng, f"r{i}"))
        batch = batcher.poll()
        assert batch is not None
        assert batch.trigger == "full"
        assert batch.size == 4
        assert batch.xyz.shape == (4, N_POINTS, 3)
        assert batcher.poll() is None

    def test_buckets_by_point_count(self, rng):
        clock = FixedClock(0.0)
        queue, batcher = self._batcher(clock)
        queue.put(_request(rng, "small", n=16))
        queue.put(_request(rng, "large", n=64))
        assert batcher.poll() is None  # neither bucket is due yet
        assert batcher.buffered == 2
        clock.advance(0.06)  # past max_wait: both flush, separately
        first = batcher.poll()
        second = batcher.poll()
        assert first.trigger == "timeout"
        assert second.trigger == "timeout"
        assert {first.xyz.shape[1], second.xyz.shape[1]} == {16, 64}
        assert first.size == second.size == 1

    def test_timeout_trigger_honors_wait_hint(self, rng):
        clock = FixedClock(0.0)
        queue, batcher = self._batcher(clock)
        queue.put(_request(rng, "lone"))
        assert batcher.poll() is None
        assert batcher.next_flush_at == pytest.approx(0.05)
        clock.advance(0.05)
        batch = batcher.poll()
        assert batch is not None and batch.trigger == "timeout"

    def test_drain_trigger_flushes_partial_buckets(self, rng):
        clock = FixedClock(0.0)
        queue, batcher = self._batcher(clock)
        queue.put(_request(rng, "a"))
        queue.put(_request(rng, "b"))
        assert batcher.poll() is None
        queue.close()
        batch = batcher.poll()
        assert batch.trigger == "drain"
        assert batch.size == 2
        assert batcher.drained()

    def test_expired_request_gets_typed_error(self, rng):
        registry = MetricsRegistry()
        clock = FixedClock(0.0)
        queue, batcher = self._batcher(clock, registry)
        doomed = _request(rng, "doomed", deadline=0.02)
        queue.put(doomed)
        clock.advance(0.03)  # past the deadline, before max_wait
        assert batcher.poll() is None
        assert doomed.future.done()
        with pytest.raises(DeadlineExceededError):
            doomed.future.result()
        assert batcher.requests_expired == 1
        assert registry.counter("serving_expired_total").value == 1

    def test_oversize_bucket_splits_into_max_batches(self, rng):
        clock = FixedClock(0.0)
        queue, batcher = self._batcher(clock, max_batch_size=3)
        for i in range(7):
            queue.put(_request(rng, f"r{i}"))
        sizes = []
        queue.close()
        while True:
            batch = batcher.poll()
            if batch is None:
                break
            sizes.append(batch.size)
        assert sizes == [3, 3, 1]


class TestThreadedServer:
    def test_graceful_drain_loses_nothing(self, rng):
        registry = MetricsRegistry()
        server = InferenceServer(
            _pipeline(registry),
            ServingConfig(
                max_batch_size=4, max_wait_ms=5.0, workers=2
            ),
            metrics=registry,
        )
        with server:
            requests = [
                server.submit(rng.random((N_POINTS, 3)))
                for _ in range(20)
            ]
        # The with-block exit drains: every future must be resolved.
        results = [r.future.result(timeout=10.0) for r in requests]
        assert len(results) == 20
        assert server.completed == 20
        assert server.outstanding == 0
        assert server.stats()["failed"] == 0
        assert registry.counter("serving_completed_total").value == 20
        for result in results:
            assert result.logits.shape == (N_POINTS, 3)
            assert result.prediction.shape == (N_POINTS,)
            assert result.batch_size >= 1
            assert result.trigger in ("full", "timeout", "drain")

    def test_non_drain_stop_cancels_with_typed_error(self, rng):
        server = InferenceServer(
            _pipeline(),
            ServingConfig(
                max_batch_size=64,
                max_wait_ms=10_000.0,  # nothing flushes on its own
                workers=1,
            ),
        )
        server.start()
        requests = [
            server.submit(rng.random((N_POINTS, 3))) for _ in range(3)
        ]
        server.stop(drain=False)
        for request in requests:
            assert request.future.done()
            with pytest.raises(QueueClosedError):
                request.future.result()
        assert server.outstanding == 0

    def test_submit_validates_shape(self, rng):
        server = InferenceServer(_pipeline())
        with pytest.raises(ValueError):
            server.submit(rng.random((2, N_POINTS, 3)))

    def test_submissions_after_stop_are_rejected(self, rng):
        server = InferenceServer(_pipeline())
        server.start()
        server.stop()
        with pytest.raises(QueueClosedError):
            server.submit(rng.random((N_POINTS, 3)))


class TestWorkspaceOwnership:
    def test_claimed_workspace_rejects_foreign_thread(self):
        workspace = Workspace()
        workspace.claim_owner()
        workspace.buffer("ok", (8,))  # owner may use it
        caught = []

        def misuse():
            try:
                workspace.buffer("nope", (8,))
            except WorkspaceOwnershipError as err:
                caught.append(err)

        thread = threading.Thread(target=misuse)
        thread.start()
        thread.join()
        assert len(caught) == 1

    def test_claim_cannot_be_stolen_but_release_frees_it(self):
        workspace = Workspace()
        workspace.claim_owner()
        errors = []

        def steal():
            try:
                workspace.claim_owner()
            except WorkspaceOwnershipError as err:
                errors.append(err)

        thread = threading.Thread(target=steal)
        thread.start()
        thread.join()
        assert len(errors) == 1
        workspace.release_owner()
        # Unclaimed again: another thread may now claim it.
        done = []
        thread = threading.Thread(
            target=lambda: done.append(workspace.claim_owner())
        )
        thread.start()
        thread.join()
        assert done

    def test_per_thread_workspaces_survive_hammering(self):
        # The supported serving pattern: one claimed workspace per
        # thread, hammered concurrently, never cross-contaminates.
        errors = []

        def worker(seed):
            try:
                workspace = Workspace().claim_owner()
                rng = np.random.default_rng(seed)
                for i in range(200):
                    shape = (int(rng.integers(1, 64)), 3)
                    buf = workspace.buffer("scratch", shape)
                    buf.fill(seed)
                    assert (buf == seed).all()
                workspace.clear()
            except Exception as err:  # pragma: no cover
                errors.append(err)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_server_workers_use_distinct_workspaces(self, rng):
        server = InferenceServer(
            _pipeline(),
            ServingConfig(
                max_batch_size=2, max_wait_ms=5.0, workers=3
            ),
        )
        with server:
            requests = [
                server.submit(rng.random((N_POINTS, 3)))
                for _ in range(12)
            ]
        for request in requests:
            request.future.result(timeout=10.0)
        assert server.completed == 12


class TestServingUnderFaults:
    TINY_PROBE = dict(probe_points=16, probe_samples=8, probe_k=4)

    def _guarded_server(self, registry, **threshold_overrides):
        params = dict(self.TINY_PROBE)
        params.update(threshold_overrides)
        pipeline = _pipeline(registry)
        guard = GuardedPipeline(
            pipeline,
            policy=ValidationPolicy.repair(),
            thresholds=GuardThresholds(**params),
            seed=0,
            metrics=registry,
        )
        return InferenceServer(
            guard,
            ServingConfig(
                max_batch_size=4, max_wait_ms=5.0, workers=2
            ),
            metrics=registry,
        )

    def test_faults_trip_breaker_without_losing_requests(self, rng):
        # Impossible thresholds with trip_limit=1: the first dispatch
        # trips every probe and opens the breakers, while every
        # request still completes (degraded, not dropped).
        registry = MetricsRegistry()
        server = self._guarded_server(
            registry,
            max_density_cv=-1.0,
            max_false_neighbor_rate=-1.0,
            trip_limit=1,
        )
        injector = FaultInjector(seed=7)
        spec = FaultSpec("storm", "duplicate_storm", fraction=0.5)
        with server:
            requests = []
            for index in range(12):
                cloud = rng.random((N_POINTS, 3))
                if index % 2 == 0:
                    cloud = injector.apply(cloud, spec)
                requests.append(server.submit(cloud))
        results = [r.future.result(timeout=10.0) for r in requests]
        assert len(results) == 12  # nothing lost, no deadlock
        assert server.outstanding == 0
        guard = server.pipeline
        assert "open" in set(guard.breaker_states.values())
        transitions = sum(
            entry["value"]
            for entry in registry.snapshot()["metrics"]
            if entry["name"] == "guard_breaker_transitions_total"
        )
        assert transitions >= 1
        # Serving metrics carry the trip's visible effects too.
        assert registry.counter("serving_completed_total").value == 12
        assert any(result.degraded_stages for result in results)

    def test_unrepairable_batch_fails_typed_others_survive(self, rng):
        # A reject-policy guard turns an all-NaN cloud into a
        # structured rejection; the server surfaces it as a typed
        # failure on that batch only.
        registry = MetricsRegistry()
        pipeline = _pipeline(registry)
        guard = GuardedPipeline(
            pipeline,
            policy=ValidationPolicy(),  # strict: reject
            thresholds=GuardThresholds(**self.TINY_PROBE),
            seed=0,
            metrics=registry,
        )
        server = InferenceServer(
            guard,
            ServingConfig(
                max_batch_size=1, max_wait_ms=1.0, workers=1
            ),
            metrics=registry,
        )
        bad = np.full((N_POINTS, 3), np.nan)
        with server:
            poisoned = server.submit(bad)
            healthy = server.submit(rng.random((N_POINTS, 3)))
        assert healthy.future.result(timeout=10.0).prediction.shape
        with pytest.raises(Exception):
            poisoned.future.result(timeout=10.0)
        assert server.outstanding == 0
        assert registry.counter("serving_completed_total").value == 1


def _virtual_server(registry=None, seed=0, **config_kwargs):
    clock = FixedClock(0.0)
    defaults = dict(max_batch_size=8, max_wait_ms=50.0, workers=2)
    defaults.update(config_kwargs)
    server = InferenceServer(
        _pipeline(registry, seed=seed),
        ServingConfig(**defaults),
        clock=clock,
        metrics=registry,
    )
    return server


class TestLoadGenerator:
    def _run(self, gen_kwargs=None, **config_kwargs):
        server = _virtual_server(MetricsRegistry(), **config_kwargs)
        params = dict(
            duration_s=1.0, rate=50.0, seed=11, points=(N_POINTS,)
        )
        params.update(gen_kwargs or {})
        return LoadGenerator(server, LoadGenConfig(**params)).run()

    def test_two_runs_are_identical(self):
        first = self._run().to_dict()
        second = self._run().to_dict()
        assert first == second

    def test_batching_actually_happens_at_50rps(self):
        report = self._run()
        assert report.mean_batch_size > 1.5
        assert report.lost == 0
        assert report.failed == 0
        assert report.completed == report.admitted
        assert report.latency_ms["p50"] > 0
        assert report.latency_ms["p99"] >= report.latency_ms["p95"]

    def test_fixed_arrivals_offer_exact_count(self):
        report = self._run({"arrival": "fixed", "duration_s": 1.0})
        assert report.submitted == 50

    def test_closed_loop_self_limits(self):
        report = self._run(
            {"mode": "closed", "concurrency": 4, "duration_s": 0.5}
        )
        assert report.submitted >= 4
        assert report.lost == 0
        assert report.failed == 0

    def test_deadlines_expire_as_typed_outcomes(self):
        # A deadline shorter than the batching window: every request
        # expires before its bucket's timeout flush.
        report = self._run(
            {"deadline_ms": 10.0, "duration_s": 0.3},
            max_batch_size=64,
            max_wait_ms=500.0,
        )
        assert report.expired > 0
        assert report.lost == 0
        assert report.expired + report.completed == report.admitted

    def test_overload_sheds_via_admission_control(self):
        report = self._run(
            {"rate": 2000.0, "duration_s": 0.2},
            max_queue_depth=16,
            max_wait_ms=200.0,
        )
        assert report.rejected > 0
        assert report.lost == 0
        assert (
            report.admitted + report.rejected == report.submitted
        )

    def test_requires_a_fixed_clock(self):
        server = InferenceServer(_pipeline())  # wall clock
        with pytest.raises(TypeError):
            LoadGenerator(server, LoadGenConfig(duration_s=0.1))

    def test_report_roundtrips_to_json(self, tmp_path):
        import json

        report = self._run({"duration_s": 0.2})
        path = tmp_path / "report.json"
        report.save(str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(report.to_dict())
        )
        assert "loadgen" in report.summary()

    def test_rejections_are_counted_by_reason(self):
        report = self._run(
            {"rate": 2000.0, "duration_s": 0.2},
            max_queue_depth=16,
            max_wait_ms=200.0,
        )
        assert report.rejected > 0
        assert (
            report.rejection_reasons["queue_full"] == report.rejected
        )
        assert "rejections by reason" in report.summary()
        assert (
            report.to_dict()["rejection_reasons"]
            == report.rejection_reasons
        )

    def test_expiries_surface_as_deadline_reason(self):
        report = self._run(
            {"deadline_ms": 10.0, "duration_s": 0.3},
            max_batch_size=64,
            max_wait_ms=500.0,
        )
        assert report.expired > 0
        assert report.rejection_reasons["deadline"] == report.expired


class TestQueueRejectionReasons:
    def test_queue_tallies_typed_rejections(self, rng):
        queue = RequestQueue(max_depth=1)
        queue.put(_request(rng, "a"))
        with pytest.raises(QueueFullError):
            queue.put(_request(rng, "b"))
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put(_request(rng, "c"))
        assert queue.rejected_by_reason == {
            "queue_full": 1,
            "closed": 1,
        }


class TestDrainTimeout:
    def test_stuck_worker_raises_typed_drain_error(self, rng):
        registry = MetricsRegistry()
        server = InferenceServer(
            _pipeline(),
            ServingConfig(workers=1, max_wait_ms=1.0),
            metrics=registry,
        )
        server.start()
        release = threading.Event()
        stuck = threading.Thread(
            target=release.wait, name="stuck-worker", daemon=True
        )
        stuck.start()
        server._threads.append(stuck)
        try:
            with pytest.raises(DrainTimeoutError) as err:
                server.stop(timeout_s=0.2)
            assert "stuck-worker" in str(err.value)
            assert (
                registry.counter(
                    "serving_drain_timeouts_total"
                ).value
                == 1
            )
        finally:
            release.set()

    def test_clean_stop_does_not_raise(self, rng):
        server = InferenceServer(
            _pipeline(), ServingConfig(workers=1, max_wait_ms=1.0)
        )
        server.start()
        server.submit(rng.random((N_POINTS, 3)))
        server.stop(timeout_s=10.0)


class TestServerTracing:
    """PR 7: the single-server trace projection and exemplars."""

    def _traced_server(self):
        clock = FixedClock(0.0)
        tracer = Tracer(clock=clock)
        registry = MetricsRegistry()
        server = InferenceServer(
            _pipeline(),
            ServingConfig(max_batch_size=4, max_wait_ms=10.0, workers=1),
            clock=clock,
            tracer=tracer,
            metrics=registry,
        )
        return server, clock, tracer, registry

    def _run(self, server, clock, rng, count=3):
        requests = [
            server.submit(rng.random((N_POINTS, 3)))
            for _ in range(count)
        ]
        clock.advance(0.05)
        server.pump()
        return requests

    def test_submit_mints_a_root_context(self, rng):
        server, clock, tracer, _ = self._traced_server()
        requests = self._run(server, clock, rng)
        for request in requests:
            assert request.ctx is not None
            assert request.ctx.is_root
            result = request.future.result()
            assert result.trace_id == request.ctx.trace_id

    def test_request_trace_covers_all_stages(self, rng):
        server, clock, tracer, _ = self._traced_server()
        requests = self._run(server, clock, rng)
        records = [span.to_dict() for span in tracer.finished()]
        assert find_orphans(records) == []
        grouped = spans_by_trace(records)
        assert len(grouped) == len(requests)
        for spans in grouped.values():
            names = [s["name"] for s in spans]
            for expected in (
                "request",
                "request.queue",
                "request.batch",
                "request.sample",
                "request.neighbor_search",
                "request.grouping",
                "request.feature_compute",
            ):
                assert expected in names, names

    def test_batch_span_links_back_to_dispatch(self, rng):
        server, clock, tracer, _ = self._traced_server()
        self._run(server, clock, rng)
        records = [span.to_dict() for span in tracer.finished()]
        dispatch_ids = {
            r["id"]
            for r in records
            if r["name"] == "serving.dispatch"
        }
        batch_spans = [
            r for r in records if r["name"] == "request.batch"
        ]
        assert batch_spans
        for span in batch_spans:
            links = span.get("links", [])
            assert links, span
            assert any(
                link[1] in dispatch_ids for link in links
            ), (links, dispatch_ids)

    def test_latency_histogram_records_exemplars(self, rng):
        server, clock, tracer, registry = self._traced_server()
        self._run(server, clock, rng)
        hist = registry.histogram(
            "serving_request_latency_seconds",
            buckets=REQUEST_LATENCY_BUCKETS,
        )
        assert hist.count == 3
        exemplar = hist.exemplar_for_quantile(0.95)
        assert exemplar is not None
        trace_id, value = exemplar
        assert trace_id.startswith("trace-r")
        assert value > 0.0

    def test_disabled_tracer_still_sets_no_trace_id(self, rng):
        clock = FixedClock(0.0)
        server = InferenceServer(
            _pipeline(),
            ServingConfig(max_batch_size=4, max_wait_ms=10.0, workers=1),
            clock=clock,
        )
        request = server.submit(rng.random((N_POINTS, 3)))
        assert request.ctx is None
        clock.advance(0.05)
        server.pump()
        assert request.future.result().trace_id == ""
