"""Tests for the repro.observability package: tracer, metrics
registry, exporters, and the run-report aggregator."""

import json
import math
import os
import threading
import tracemalloc

import numpy as np
import pytest

from repro.observability import (
    FixedClock,
    MetricsRegistry,
    NULL_SPAN,
    NULL_TRACER,
    RunReport,
    TraceContext,
    Tracer,
    emit_stage_spans,
    escape_label_value,
    find_orphans,
    global_registry,
    mint_trace_id,
    parse_prometheus,
    parse_prometheus_series,
    reset_global_registry,
    spans_by_trace,
    unescape_label_value,
)
from repro.observability import tracing as tracing_module
from repro.runtime.profiler import StageBreakdown

GOLDEN = os.path.join(
    os.path.dirname(__file__), "data", "golden_chrome_trace.json"
)


def _golden_tracer() -> Tracer:
    """A tracer filled with deterministic simulated spans only."""
    tracer = Tracer()
    start = tracer.emit(
        "sample", 0.004, category="stage", attrs={"stage": "sample"}
    )
    tracer.emit(
        "sample[0]", 0.003, category="layer", start_s=start,
        attrs={"stage": "sample"},
    )
    tracer.emit(
        "sample[1]", 0.001, category="layer", start_s=start + 0.003,
        attrs={"stage": "sample"},
    )
    tracer.emit("neighbor_search", 0.002, category="stage")
    return tracer


class TestTracer:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = {s.name: s for s in tracer.finished()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        # Inner completes first.
        assert [s.name for s in tracer.finished()] == [
            "inner", "outer"
        ]

    def test_span_records_wall_time_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", "test") as span:
            span.set("k", 3)
            span.add_cost(0.5)
        (finished,) = tracer.finished()
        assert finished.duration_s >= 0
        assert finished.attrs == {"k": 3}
        assert finished.cost_s == 0.5
        assert finished.category == "test"
        assert not finished.simulated

    def test_exception_is_tagged_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (finished,) = tracer.finished()
        assert finished.attrs["error"] == "RuntimeError"

    def test_emit_tiles_the_simulated_track(self):
        tracer = Tracer()
        first = tracer.emit("a", 1.0)
        second = tracer.emit("b", 2.0)
        pinned = tracer.emit("c", 0.5, start_s=0.25)
        third = tracer.emit("d", 1.0)
        assert (first, second, pinned) == (0.0, 1.0, 0.25)
        assert third == 3.0  # explicit start_s does not move cursor
        assert all(s.simulated for s in tracer.finished())

    def test_spans_from_threads_are_collected(self):
        tracer = Tracer()

        def work():
            with tracer.span("worker"):
                pass

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.finished()) == 8

    def test_clear_resets_spans_and_cursor(self):
        tracer = _golden_tracer()
        tracer.clear()
        assert tracer.finished() == ()
        assert tracer.emit("x", 1.0) == 0.0


class TestNullTracer:
    def test_span_returns_the_shared_singleton(self):
        assert NULL_TRACER.span("anything") is NULL_SPAN
        assert NULL_TRACER.span("other", "cat") is NULL_SPAN

    def test_null_span_accepts_the_full_protocol(self):
        with NULL_TRACER.span("x") as span:
            span.set("a", 1)
            span.add_cost(2.0)
        assert NULL_TRACER.finished() == ()

    def test_emit_is_a_noop(self):
        assert NULL_TRACER.emit("x", 1.0) == 0.0
        assert NULL_TRACER.finished() == ()

    def test_emit_stage_spans_skips_disabled_tracer(self):
        breakdown = StageBreakdown(1.0, 1.0, 1.0, 1.0)
        emit_stage_spans(NULL_TRACER, breakdown)
        assert NULL_TRACER.finished() == ()


class TestEmitStageSpans:
    def test_layers_nest_inside_their_stage(self):
        tracer = Tracer()
        breakdown = StageBreakdown(
            sample_s=0.004, neighbor_s=0.002, grouping_s=0.001,
            feature_s=0.003,
            per_layer_s={
                "sample[0]": 0.003, "sample[1]": 0.001,
                "neighbor_search[0]": 0.002,
                "grouping[0]": 0.001,
                "feature_compute[0]": 0.003,
            },
        )
        emit_stage_spans(tracer, breakdown)
        spans = {s.name: s for s in tracer.finished()}
        stage = spans["sample"]
        for layer in ("sample[0]", "sample[1]"):
            child = spans[layer]
            assert child.start_s >= stage.start_s
            assert (
                child.start_s + child.duration_s
                <= stage.start_s + stage.duration_s + 1e-12
            )
        # Stages tile in pipeline order on the simulated track.
        order = [
            s.name for s in tracer.finished() if s.category == "stage"
        ]
        assert order == [
            "sample", "neighbor_search", "grouping",
            "feature_compute",
        ]


class TestChromeExportGolden:
    def test_matches_golden_file(self, tmp_path):
        tracer = _golden_tracer()
        path = str(tmp_path / "trace.json")
        tracer.export_chrome(path)
        with open(path) as fh:
            produced = json.load(fh)
        with open(GOLDEN) as fh:
            golden = json.load(fh)
        assert produced == golden
        # Byte-for-byte too: the exporter output must stay diffable.
        with open(path) as fh, open(GOLDEN) as gh:
            assert fh.read() == gh.read()

    def test_chrome_document_shape(self):
        doc = _golden_tracer().to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["tid"] == "simulated"
            assert event["dur"] >= 0

    def test_jsonl_round_trips_span_fields(self, tmp_path):
        tracer = _golden_tracer()
        path = str(tmp_path / "spans.jsonl")
        tracer.export_jsonl(path)
        with open(path) as fh:
            records = [json.loads(line) for line in fh]
        assert [r["name"] for r in records] == [
            "sample", "sample[0]", "sample[1]", "neighbor_search"
        ]
        assert all(r["simulated"] for r in records)
        assert records[0]["cost_s"] == pytest.approx(0.004)


class TestTraceContext:
    def test_mint_sets_root_and_baggage(self):
        ctx = TraceContext.mint("r1", span_id=7, tenant="a")
        assert ctx.trace_id == mint_trace_id("r1") == "trace-r1"
        assert ctx.span_id == 7
        assert ctx.is_root
        assert ctx.get("tenant") == "a"
        assert ctx.get("request_id") == "r1"

    def test_child_keeps_trace_but_not_root(self):
        ctx = TraceContext.mint("r1", span_id=7)
        child = ctx.child(9)
        assert child.trace_id == ctx.trace_id
        assert child.span_id == 9
        assert not child.is_root
        assert child.get("request_id") == "r1"

    def test_with_baggage_is_immutable_update(self):
        ctx = TraceContext.mint("r1", span_id=1)
        tagged = ctx.with_baggage(attempt="2")
        assert tagged.get("attempt") == "2"
        assert ctx.get("attempt") is None
        assert tagged.to_dict()["baggage"]["attempt"] == "2"

    def test_tracer_mints_contexts_only_when_enabled(self):
        assert NULL_TRACER.mint_context("r1") is None
        tracer = Tracer(clock=FixedClock(0.0))
        ctx = tracer.mint_context("r1", tenant="t")
        assert ctx is not None and ctx.is_root
        assert ctx.get("tenant") == "t"


class TestTraceStitching:
    def _records(self, tracer):
        return [span.to_dict() for span in tracer.finished()]

    def test_emit_span_carries_trace_identity(self):
        tracer = Tracer(clock=FixedClock(0.0))
        root = tracer.next_span_id()
        tracer.emit_span(
            "request", start_s=0.0, duration_s=0.5,
            trace_id="trace-r1", span_id=root,
        )
        tracer.emit_span(
            "request.queue", start_s=0.0, duration_s=0.1,
            trace_id="trace-r1", parent_id=root,
        )
        records = self._records(tracer)
        grouped = spans_by_trace(records)
        assert set(grouped) == {"trace-r1"}
        assert [r["name"] for r in grouped["trace-r1"]] == [
            "request",
            "request.queue",
        ]
        assert find_orphans(records) == []

    def test_find_orphans_flags_missing_parent(self):
        tracer = Tracer(clock=FixedClock(0.0))
        tracer.emit_span(
            "request.queue", start_s=0.0, duration_s=0.1,
            trace_id="trace-r1", parent_id=12345,
        )
        orphans = find_orphans(self._records(tracer))
        assert [o["name"] for o in orphans] == ["request.queue"]

    def test_untraced_spans_are_not_orphans(self):
        # Spans without a trace_id (the workload tracer's output) are
        # outside the stitching contract entirely.
        tracer = _golden_tracer()
        assert find_orphans(self._records(tracer)) == []


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("hits_total") is counter
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("trips_total", stage="sampling").inc()
        registry.counter("trips_total", stage="neighbor").inc(2)
        assert (
            registry.counter("trips_total", stage="sampling").value
            == 1
        )
        assert (
            registry.counter("trips_total", stage="neighbor").value
            == 2
        )
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == 2.5

    def test_histogram_buckets_and_quantile(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(v)
        assert hist.count == 5
        assert hist.sum == pytest.approx(56.05)
        assert hist.cumulative_counts() == [1, 3, 4, 5]
        assert 0.1 <= hist.quantile(0.5) <= 1.0
        assert hist.quantile(0.0) == pytest.approx(0.0)
        # The +Inf tail saturates at the largest finite bound.
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_histogram_requires_sorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 0.1))

    def test_empty_histogram_quantile_is_nan(self):
        # A 0.0 here once let an idle chaos run (zero samples) pass
        # the p95 gate as "0 ms"; no-data must not read as healthy.
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert math.isnan(hist.quantile(0.5))

    def test_snapshot_is_sorted_and_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("z_total").inc()
        registry.gauge("a_gauge").set(1)
        snap = registry.snapshot()
        names = [entry["name"] for entry in snap["metrics"]]
        assert names == sorted(names)
        json.dumps(snap)  # must not raise


class TestSnapshotRoundTrip:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("served_total", stage="sampling").inc(7)
        registry.gauge("score", stage="neighbor").set(0.25)
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(2.0)
        return registry

    def test_json_snapshot_round_trips(self):
        registry = self._populated()
        snap = registry.snapshot()
        rebuilt = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(snap))
        )
        assert rebuilt.snapshot() == snap

    def test_export_json_file_round_trips(self, tmp_path):
        registry = self._populated()
        path = str(tmp_path / "metrics.json")
        registry.export_json(path)
        with open(path) as fh:
            rebuilt = MetricsRegistry.from_snapshot(json.load(fh))
        assert rebuilt.snapshot() == registry.snapshot()

    def test_prometheus_text_round_trips_values(self):
        registry = self._populated()
        samples = parse_prometheus(registry.to_prometheus())
        assert samples['served_total{stage="sampling"}'] == 7
        assert samples['score{stage="neighbor"}'] == 0.25
        assert samples['lat_seconds_bucket{le="0.1"}'] == 1
        assert samples['lat_seconds_bucket{le="+Inf"}'] == 2
        assert samples["lat_seconds_sum"] == pytest.approx(2.05)
        assert samples["lat_seconds_count"] == 2

    def test_prometheus_declares_each_type_once(self):
        registry = MetricsRegistry()
        registry.counter("t_total", stage="a").inc()
        registry.counter("t_total", stage="b").inc()
        text = registry.to_prometheus()
        assert text.count("# TYPE t_total counter") == 1


class TestExemplars:
    def test_observe_keeps_bucket_representative(self):
        hist = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0)
        )
        hist.observe(0.05, trace_id="trace-a")
        hist.observe(0.08, trace_id="trace-b")  # max of its bucket
        hist.observe(0.5)  # no trace id: never an exemplar
        assert hist.exemplar_for_quantile(0.0) == ("trace-b", 0.08)

    def test_exemplar_prefers_the_slow_tail(self):
        hist = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0)
        )
        hist.observe(0.05, trace_id="trace-fast")
        hist.observe(2.0, trace_id="trace-slow")
        assert hist.exemplar_for_quantile(0.99) == (
            "trace-slow",
            2.0,
        )

    def test_no_exemplars_returns_none(self):
        hist = MetricsRegistry().histogram(
            "latency_seconds", buckets=(1.0,)
        )
        hist.observe(0.5)
        assert hist.exemplar_for_quantile(0.5) is None
        with pytest.raises(ValueError):
            hist.exemplar_for_quantile(1.5)

    def test_exemplars_survive_snapshot_round_trip(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", buckets=(1.0,))
        hist.observe(0.5, trace_id="trace-x")
        clone = MetricsRegistry.from_snapshot(registry.snapshot())
        restored = clone.histogram("latency_seconds", buckets=(1.0,))
        assert restored.exemplar_for_quantile(0.5) == (
            "trace-x",
            0.5,
        )


class TestLabelEscaping:
    def test_escape_round_trips_the_nasty_characters(self):
        raw = 'tenant "a"\\with\nnewline'
        assert unescape_label_value(escape_label_value(raw)) == raw

    def test_prometheus_series_round_trip_with_escapes(self):
        registry = MetricsRegistry()
        registry.counter(
            "requests_total", tenant='t"quoted"', path="a\\b\nc"
        ).inc(3)
        series = parse_prometheus_series(registry.to_prometheus())
        key = (
            "requests_total",
            (("path", "a\\b\nc"), ("tenant", 't"quoted"')),
        )
        assert series[key] == 3.0

    def test_property_escape_unescape_round_trip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=200, deadline=None)
        @given(
            st.text(
                alphabet=st.characters(
                    blacklist_categories=("Cs",)
                ),
                max_size=40,
            )
        )
        def check(value):
            assert (
                unescape_label_value(escape_label_value(value))
                == value
            )
            escaped = escape_label_value(value)
            assert "\n" not in escaped

        check()

    def test_property_series_round_trip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        label_text = st.text(
            alphabet=st.characters(
                whitelist_categories=("L", "N", "P", "S", "Z"),
                whitelist_characters='\\"\n',
            ),
            min_size=0,
            max_size=24,
        )

        @settings(max_examples=100, deadline=None)
        @given(label_text)
        def check(value):
            registry = MetricsRegistry()
            registry.counter("series_total", label=value).inc()
            series = parse_prometheus_series(
                registry.to_prometheus()
            )
            assert series[
                ("series_total", (("label", value),))
            ] == 1.0

        check()


class TestRegistryConcurrency:
    def test_threads_hammering_one_registry(self):
        registry = MetricsRegistry()
        n_threads, n_iter = 8, 500
        barrier = threading.Barrier(n_threads)

        def work(tid: int):
            barrier.wait()
            for i in range(n_iter):
                registry.counter("c_total").inc()
                registry.counter("labeled_total", t=str(tid)).inc()
                registry.gauge("g").set(i)
                registry.histogram(
                    "h", buckets=(0.5, 1.0)
                ).observe(i % 2)

        threads = [
            threading.Thread(target=work, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("c_total").value == n_threads * n_iter
        for t in range(n_threads):
            assert (
                registry.counter("labeled_total", t=str(t)).value
                == n_iter
            )
        hist = registry.histogram("h", buckets=(0.5, 1.0))
        assert hist.count == n_threads * n_iter
        assert sum(hist.counts) == hist.count


class TestGlobalRegistry:
    def test_reset_swaps_the_instance(self):
        first = global_registry()
        first.counter("stale_total").inc()
        fresh = reset_global_registry()
        assert global_registry() is fresh
        assert fresh is not first
        assert len(fresh) == 0


class TestRunReport:
    def test_build_merges_all_sources(self):
        tracer = _golden_tracer()
        registry = MetricsRegistry()
        registry.counter("pipeline_batches_total").inc(3)
        breakdowns = [
            StageBreakdown(0.1, 0.2, 0.3, 0.4),
            StageBreakdown(0.3, 0.4, 0.5, 0.6),
            StageBreakdown(0.2, 0.3, 0.4, 0.5),
        ]
        report = RunReport.build(
            tracer=tracer, metrics=registry,
            breakdowns=breakdowns, workload="W3",
        )
        assert report.meta["workload"] == "W3"
        assert report.meta["schema_version"] == 1
        assert len(report.spans) == 4
        medians = report.stage_medians_s()
        assert medians["sample_s"] == pytest.approx(0.2)
        assert medians["total_s"] == pytest.approx(1.4)

    def test_save_load_round_trip(self, tmp_path):
        report = RunReport.build(
            tracer=_golden_tracer(),
            metrics=MetricsRegistry(),
            command="test",
        )
        path = str(tmp_path / "report.json")
        report.save(path)
        loaded = RunReport.load(path)
        assert loaded.meta == report.meta
        assert loaded.spans == report.spans
        assert loaded.metrics == report.metrics

    def test_empty_report_has_no_medians(self):
        assert RunReport.build().stage_medians_s() == {}

    def test_creation_time_is_injectable(self):
        from repro.observability import FixedClock

        report = RunReport.build(clock=FixedClock(123.0))
        assert report.meta["created_unix"] == 123.0

    def test_fixed_clock_advances(self):
        from repro.observability import FixedClock

        clock = FixedClock(10.0)
        assert clock() == 10.0
        clock.advance(2.5)
        assert clock() == 12.5

    def test_default_clock_is_wall_time(self):
        report = RunReport.build()
        assert report.meta["created_unix"] > 1.6e9


class TestDisabledTracingOverhead:
    """The acceptance criterion: a pipeline without a tracer must not
    allocate tracer-side objects per batch."""

    def _pipeline(self):
        from repro.core import EdgePCConfig
        from repro.nn import PointNet2Segmentation, SAConfig
        from repro.pipeline import EdgePCPipeline

        model = PointNet2Segmentation(
            num_classes=3,
            sa_configs=(
                SAConfig(0.5, 4, 1.5, (8, 8)),
                SAConfig(0.5, 4, 3.0, (16, 16)),
            ),
            edgepc=EdgePCConfig.paper_default(),
            head_hidden=8,
            rng=np.random.default_rng(0),
        )
        return EdgePCPipeline(model)

    def test_default_pipeline_uses_the_null_tracer(self):
        pipeline = self._pipeline()
        assert pipeline.tracer is NULL_TRACER
        assert pipeline.metrics is None
        assert pipeline.tracer.span("pipeline.infer") is NULL_SPAN

    def test_disabled_infer_allocates_nothing_in_the_tracer(self, rng):
        pipeline = self._pipeline()
        xyz = rng.normal(size=(1, 64, 3))
        pipeline.infer(xyz)  # warm caches and lazy imports
        trace_filter = tracemalloc.Filter(
            True, tracing_module.__file__
        )
        tracemalloc.start()
        try:
            pipeline.infer(xyz)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = snapshot.filter_traces([trace_filter]).statistics(
            "lineno"
        )
        assert sum(s.size for s in stats) == 0, stats
        assert NULL_TRACER.finished() == ()
