"""Tests for the geometry substrate: bounding boxes, point clouds,
voxel grids, transforms, and shape samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry import BoundingBox, PointCloud, VoxelGrid
from repro.geometry import shapes, transforms


class TestBoundingBox:
    def test_of_points(self):
        pts = np.array([[0, 0, 0], [1, 2, 3], [-1, 1, 1]], dtype=float)
        box = BoundingBox.of_points(pts)
        assert np.array_equal(box.minimum, [-1, 0, 0])
        assert np.array_equal(box.maximum, [1, 2, 3])

    def test_extent_and_longest_side(self):
        box = BoundingBox(np.zeros(3), np.array([2.0, 5.0, 1.0]))
        assert np.array_equal(box.extent, [2, 5, 1])
        assert box.longest_side == 5.0

    def test_center(self):
        box = BoundingBox(np.zeros(3), np.array([2.0, 4.0, 6.0]))
        assert np.array_equal(box.center, [1, 2, 3])

    def test_diagonal(self):
        box = BoundingBox(np.zeros(3), np.array([3.0, 4.0, 0.0]))
        assert box.diagonal == pytest.approx(5.0)

    def test_contains(self):
        box = BoundingBox(np.zeros(3), np.ones(3))
        inside = box.contains(np.array([[0.5, 0.5, 0.5], [2, 0, 0]]))
        assert inside.tolist() == [True, False]

    def test_contains_boundary_inclusive(self):
        box = BoundingBox(np.zeros(3), np.ones(3))
        assert box.contains(np.array([[1.0, 1.0, 1.0]]))[0]

    def test_expanded(self):
        box = BoundingBox(np.zeros(3), np.ones(3)).expanded(0.5)
        assert np.array_equal(box.minimum, [-0.5] * 3)
        assert np.array_equal(box.maximum, [1.5] * 3)

    def test_expanded_rejects_negative(self):
        with pytest.raises(ValueError):
            BoundingBox(np.zeros(3), np.ones(3)).expanded(-1)

    def test_grid_size_for_bits(self):
        box = BoundingBox(np.zeros(3), np.array([8.0, 1.0, 1.0]))
        assert box.grid_size_for_bits(3) == 1.0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            BoundingBox(np.ones(3), np.zeros(3))

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError):
            BoundingBox.of_points(np.empty((0, 3)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            BoundingBox.of_points(np.zeros((4, 2)))


class TestPointCloud:
    def test_basic(self, small_cloud):
        cloud = PointCloud(small_cloud)
        assert len(cloud) == 256
        assert cloud.num_feature_channels == 0

    def test_features_and_labels(self, small_cloud, rng):
        cloud = PointCloud(
            small_cloud,
            features=rng.random((256, 4)),
            labels=rng.integers(0, 3, 256),
        )
        assert cloud.num_feature_channels == 4
        assert cloud.labels.dtype == np.int64

    def test_select_keeps_attributes(self, small_cloud, rng):
        cloud = PointCloud(
            small_cloud, labels=rng.integers(0, 3, 256)
        )
        sub = cloud.select(np.array([5, 1, 9]))
        assert len(sub) == 3
        assert np.array_equal(sub.xyz[0], cloud.xyz[5])
        assert sub.labels[1] == cloud.labels[1]

    def test_permuted_roundtrip(self, small_cloud, rng):
        cloud = PointCloud(small_cloud)
        perm = rng.permutation(256)
        inverse = np.argsort(perm)
        back = cloud.permuted(perm).permuted(inverse)
        assert np.array_equal(back.xyz, cloud.xyz)

    def test_permuted_rejects_non_permutation(self, small_cloud):
        with pytest.raises(ValueError):
            PointCloud(small_cloud).permuted(np.zeros(256, dtype=int))

    def test_concatenate(self, small_cloud):
        a = PointCloud(small_cloud[:100])
        b = PointCloud(small_cloud[100:])
        merged = a.concatenated_with(b)
        assert len(merged) == 256

    def test_concatenate_rejects_mismatched_attrs(self, small_cloud):
        a = PointCloud(small_cloud[:10], labels=np.zeros(10, dtype=int))
        b = PointCloud(small_cloud[10:20])
        with pytest.raises(ValueError):
            a.concatenated_with(b)

    def test_rejects_nan(self):
        pts = np.zeros((4, 3))
        pts[1, 2] = np.nan
        with pytest.raises(ValueError):
            PointCloud(pts)

    def test_rejects_mismatched_labels(self, small_cloud):
        with pytest.raises(ValueError):
            PointCloud(small_cloud, labels=np.zeros(7, dtype=int))

    def test_copy_is_independent(self, small_cloud):
        cloud = PointCloud(small_cloud)
        clone = cloud.copy()
        clone.xyz[0, 0] = 99.0
        assert cloud.xyz[0, 0] != 99.0

    def test_bounding_box(self, small_cloud):
        cloud = PointCloud(small_cloud)
        box = cloud.bounding_box()
        assert box.contains(cloud.xyz).all()


class TestVoxelGrid:
    def test_voxelize_basic(self):
        grid = VoxelGrid(np.zeros(3), 1.0, 8)
        cells = grid.voxelize(np.array([[0.5, 1.5, 7.9]]))
        assert cells.tolist() == [[0, 1, 7]]

    def test_voxelize_clips_to_range(self):
        grid = VoxelGrid(np.zeros(3), 1.0, 4)
        cells = grid.voxelize(np.array([[9.0, -3.0, 4.0]]))
        assert cells.tolist() == [[3, 0, 3]]

    def test_for_box_covers_all_points(self, small_cloud):
        box = BoundingBox.of_points(small_cloud)
        grid = VoxelGrid.for_box(box, 10)
        cells = grid.voxelize(small_cloud)
        assert cells.max() < grid.cells_per_axis
        assert cells.min() >= 0

    def test_for_box_degenerate_cloud(self):
        pts = np.ones((5, 3))
        grid = VoxelGrid.for_box(BoundingBox.of_points(pts), 10)
        assert np.array_equal(grid.voxelize(pts), np.zeros((5, 3)))

    def test_cell_center(self):
        grid = VoxelGrid(np.zeros(3), 2.0, 4)
        center = grid.cell_center(np.array([[1, 0, 3]]))
        assert np.array_equal(center, [[3.0, 1.0, 7.0]])

    def test_quantization_error_bound(self, small_cloud):
        box = BoundingBox.of_points(small_cloud)
        grid = VoxelGrid.for_box(box, 6)
        cells = grid.voxelize(small_cloud)
        centers = grid.cell_center(cells)
        errors = np.linalg.norm(centers - small_cloud, axis=1)
        assert errors.max() <= grid.quantization_error_bound() + 1e-12

    def test_memory_per_point(self):
        grid = VoxelGrid(np.zeros(3), 1.0, 1024)  # 10 bits/axis
        assert grid.memory_bytes_per_point == 30 / 8

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            VoxelGrid(np.zeros(3), 0.0, 4)


class TestTransforms:
    def test_normalize_unit_sphere(self, small_cloud):
        cloud = transforms.normalize_unit_sphere(
            PointCloud(small_cloud * 10 + 5)
        )
        norms = np.linalg.norm(cloud.xyz, axis=1)
        assert norms.max() == pytest.approx(1.0)
        assert np.allclose(cloud.xyz.mean(axis=0), 0, atol=1e-9)

    def test_rotate_z_preserves_norms(self, small_cloud):
        cloud = PointCloud(small_cloud)
        rotated = transforms.rotate_z(cloud, 1.3)
        assert np.allclose(
            np.linalg.norm(rotated.xyz, axis=1),
            np.linalg.norm(cloud.xyz, axis=1),
        )

    def test_rotate_z_keeps_z(self, small_cloud):
        rotated = transforms.rotate_z(PointCloud(small_cloud), 0.7)
        assert np.allclose(rotated.xyz[:, 2], small_cloud[:, 2])

    def test_jitter_is_bounded(self, small_cloud, rng):
        jittered = transforms.jitter(
            PointCloud(small_cloud), rng, sigma=0.5, clip=0.05
        )
        assert np.abs(jittered.xyz - small_cloud).max() <= 0.05 + 1e-12

    def test_random_scale_bounds(self, small_cloud, rng):
        scaled = transforms.random_scale(
            PointCloud(small_cloud), rng, 0.5, 0.6
        )
        ratio = np.linalg.norm(scaled.xyz) / np.linalg.norm(small_cloud)
        assert 0.5 <= ratio <= 0.6

    def test_random_dropout_keeps_size(self, small_cloud, rng):
        out = transforms.random_dropout(PointCloud(small_cloud), rng)
        assert len(out) == len(small_cloud)

    def test_resample_down(self, small_cloud, rng):
        out = transforms.resample_to(PointCloud(small_cloud), 64, rng)
        assert len(out) == 64

    def test_resample_up_repeats(self, small_cloud, rng):
        out = transforms.resample_to(PointCloud(small_cloud), 400, rng)
        assert len(out) == 400

    def test_resample_rejects_zero(self, small_cloud, rng):
        with pytest.raises(ValueError):
            transforms.resample_to(PointCloud(small_cloud), 0, rng)


class TestShapes:
    @pytest.mark.parametrize(
        "sampler",
        [
            shapes.sample_sphere,
            shapes.sample_torus,
            shapes.sample_cylinder,
            shapes.sample_cone,
            shapes.sample_capsule,
            shapes.sample_helix,
        ],
    )
    def test_shape_and_finiteness(self, sampler, rng):
        pts = sampler(500, rng)
        assert pts.shape == (500, 3)
        assert np.isfinite(pts).all()

    def test_sphere_radius(self, rng):
        pts = shapes.sample_sphere(1000, rng, radius=2.5)
        assert np.allclose(np.linalg.norm(pts, axis=1), 2.5)

    def test_ellipsoid_on_surface(self, rng):
        axes = (1.0, 0.6, 0.4)
        pts = shapes.sample_ellipsoid(500, rng, axes)
        implicit = np.sum((pts / np.array(axes)) ** 2, axis=1)
        assert np.allclose(implicit, 1.0)

    def test_torus_distance_from_ring(self, rng):
        pts = shapes.sample_torus(500, rng, 1.0, 0.3)
        ring_d = np.hypot(
            np.hypot(pts[:, 0], pts[:, 1]) - 1.0, pts[:, 2]
        )
        assert np.allclose(ring_d, 0.3)

    def test_box_on_surface(self, rng):
        pts = shapes.sample_box(500, rng, (2.0, 2.0, 2.0))
        on_face = np.isclose(np.abs(pts), 1.0).any(axis=1)
        assert on_face.all()

    def test_plane_is_flat(self, rng):
        pts = shapes.sample_plane(200, rng)
        assert np.allclose(pts[:, 2], 0)

    def test_density_bias_skews(self, rng):
        uniform = shapes.sample_cylinder(4000, rng, density_bias=0.0)
        biased = shapes.sample_cylinder(4000, rng, density_bias=3.0)
        # The biased cloud concentrates points toward low z.
        assert biased[:, 2].mean() < uniform[:, 2].mean() - 0.1

    def test_density_bias_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            shapes.sample_sphere(10, rng, density_bias=-0.5)

    def test_lumpy_perturbation_bounded(self, rng):
        pts = shapes.sample_sphere(300, rng)
        lumpy = shapes.lumpy_radial_perturbation(pts, rng, amplitude=0.2)
        ratio = np.linalg.norm(lumpy, axis=1) / np.linalg.norm(
            pts, axis=1
        )
        assert (ratio >= 0.8 - 1e-9).all()
        assert (ratio <= 1.2 + 1e-9).all()

    @given(n=st.integers(1, 200), seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_gaussian_blob_shape_property(self, n, seed):
        pts = shapes.sample_gaussian_blob(
            n, np.random.default_rng(seed)
        )
        assert pts.shape == (n, 3)
