"""Tests for the exact samplers and quality metrics (repro.sampling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    chamfer_distance,
    coverage_radius,
    density_uniformity,
    farthest_point_sample,
    fps_operation_count,
    mean_coverage_distance,
    random_sample,
    uniform_sample,
    uniform_stride_indices,
)


class TestFPS:
    def test_count_and_uniqueness(self, medium_cloud):
        idx = farthest_point_sample(medium_cloud, 100, start_index=0)
        assert idx.shape == (100,)
        assert len(set(idx.tolist())) == 100

    def test_starts_at_start_index(self, medium_cloud):
        idx = farthest_point_sample(medium_cloud, 10, start_index=7)
        assert idx[0] == 7

    def test_second_pick_is_farthest(self):
        pts = np.array(
            [[0, 0, 0], [1, 0, 0], [5, 0, 0], [2, 0, 0]], dtype=float
        )
        idx = farthest_point_sample(pts, 2, start_index=0)
        assert idx[1] == 2

    def test_paper_example(self):
        """Fig. 8(a): sampling 3 of 5 points starting at P0 picks
        P0, P3, P4."""
        # Coordinates chosen so the squared-distance arrays match the
        # paper's: after P0, D = {0, 14, 10, 49, 33}; after P3,
        # D = {0, 11, 10, 0, 26}.  (The same five points also satisfy
        # the Fig. 10 ball-query example — see the neighbors tests.)
        pts = np.array(
            [
                [0.0, 0.0, 0.0],    # P0
                [3.0, 2.0, 1.0],    # P1
                [3.0, 0.0, 1.0],    # P2
                [6.0, 3.0, 2.0],    # P3
                [5.0, -2.0, 2.0],   # P4
            ]
        )
        idx = farthest_point_sample(pts, 3, start_index=0)
        assert idx.tolist() == [0, 3, 4]

    def test_greedy_coverage_property(self, medium_cloud):
        """Each added FPS point never increases the coverage radius."""
        idx = farthest_point_sample(medium_cloud, 64, start_index=0)
        r16 = coverage_radius(medium_cloud, idx[:16])
        r64 = coverage_radius(medium_cloud, idx)
        assert r64 <= r16

    def test_sample_all(self, small_cloud):
        idx = farthest_point_sample(
            small_cloud, len(small_cloud), start_index=0
        )
        assert sorted(idx.tolist()) == list(range(len(small_cloud)))

    def test_random_start_deterministic_with_rng(self, small_cloud):
        a = farthest_point_sample(
            small_cloud, 5, rng=np.random.default_rng(3)
        )
        b = farthest_point_sample(
            small_cloud, 5, rng=np.random.default_rng(3)
        )
        assert np.array_equal(a, b)

    def test_rejects_zero_samples(self, small_cloud):
        with pytest.raises(ValueError):
            farthest_point_sample(small_cloud, 0)

    def test_rejects_too_many(self, small_cloud):
        with pytest.raises(ValueError):
            farthest_point_sample(small_cloud, 1000)

    def test_rejects_bad_start(self, small_cloud):
        with pytest.raises(ValueError):
            farthest_point_sample(small_cloud, 5, start_index=500)

    def test_operation_count(self):
        assert fps_operation_count(8192, 1024) == 8192 * 1024


class TestUniformAndRandom:
    def test_stride_indices_spacing(self):
        idx = uniform_stride_indices(100, 10)
        assert idx.tolist() == list(range(0, 100, 10))

    def test_stride_indices_uneven(self):
        idx = uniform_stride_indices(10, 3)
        assert idx.tolist() == [0, 3, 6]

    def test_stride_all(self):
        assert uniform_stride_indices(5, 5).tolist() == [0, 1, 2, 3, 4]

    def test_stride_rejects_zero(self):
        with pytest.raises(ValueError):
            uniform_stride_indices(10, 0)

    def test_uniform_sample_wraps_stride(self, small_cloud):
        assert np.array_equal(
            uniform_sample(small_cloud, 16),
            uniform_stride_indices(256, 16),
        )

    def test_random_sample_distinct(self, small_cloud, rng):
        idx = random_sample(small_cloud, 50, rng)
        assert len(set(idx.tolist())) == 50

    def test_random_sample_sorted(self, small_cloud, rng):
        idx = random_sample(small_cloud, 50, rng)
        assert (np.diff(idx) > 0).all()

    @given(n=st.integers(1, 500), m=st.integers(1, 500))
    @settings(max_examples=100, deadline=None)
    def test_stride_property(self, n, m):
        if m > n:
            with pytest.raises(ValueError):
                uniform_stride_indices(n, m)
            return
        idx = uniform_stride_indices(n, m)
        assert idx.shape == (m,)
        assert idx.min() >= 0
        assert idx.max() < n
        assert len(set(idx.tolist())) == m


class TestQualityMetrics:
    def test_coverage_radius_zero_when_all_sampled(self, small_cloud):
        assert coverage_radius(
            small_cloud, np.arange(len(small_cloud))
        ) == pytest.approx(0.0, abs=1e-6)

    def test_coverage_radius_single_sample(self):
        pts = np.array([[0, 0, 0], [3, 4, 0]], dtype=float)
        assert coverage_radius(pts, np.array([0])) == pytest.approx(5.0)

    def test_mean_coverage_below_max(self, medium_cloud):
        idx = uniform_sample(medium_cloud, 32)
        mean_d = mean_coverage_distance(medium_cloud, idx)
        max_d = coverage_radius(medium_cloud, idx)
        assert 0 < mean_d <= max_d

    def test_chamfer_identity(self, small_cloud):
        assert chamfer_distance(
            small_cloud, small_cloud
        ) == pytest.approx(0.0, abs=1e-6)

    def test_chamfer_symmetric(self, small_cloud, rng):
        other = rng.normal(size=(100, 3))
        assert chamfer_distance(small_cloud, other) == pytest.approx(
            chamfer_distance(other, small_cloud)
        )

    def test_density_uniformity_perfect_grid(self):
        """Samples that tile the cloud evenly give near-zero CV."""
        line = np.zeros((100, 3))
        line[:, 0] = np.arange(100)
        samples = np.arange(5, 100, 10)  # centers of 10-point blocks
        # Boundary ties leave at most a one-point imbalance per cell.
        assert density_uniformity(line, samples) < 0.1

    def test_density_uniformity_detects_clumping(self):
        line = np.zeros((100, 3))
        line[:, 0] = np.arange(100)
        clumped = np.arange(5)  # all samples at one end
        even = np.arange(5, 100, 20)
        assert density_uniformity(line, clumped) > density_uniformity(
            line, even
        )

    def test_fps_beats_random_on_coverage(self, medium_cloud, rng):
        fps_idx = farthest_point_sample(medium_cloud, 32, start_index=0)
        rand_idx = random_sample(medium_cloud, 32, rng)
        assert coverage_radius(medium_cloud, fps_idx) <= coverage_radius(
            medium_cloud, rand_idx
        )
