"""Tests for the voxel-grid sampler baseline and model checkpointing."""

import numpy as np
import pytest

from repro.datasets import bunny_like
from repro.nn import (
    DGCNNClassifier,
    load_checkpoint,
    save_checkpoint,
)
from repro.sampling import (
    cell_size_for_target_count,
    coverage_radius,
    voxel_grid_sample,
)


class TestVoxelGridSample:
    def test_one_per_occupied_voxel(self, rng):
        # Four pairs of points along x; the grid anchors at the cloud
        # minimum, so each pair sits inside its own unit cell.
        base = np.array(
            [[float(i), 0.0, 0.0] for i in range(4)]
        )
        pts = np.concatenate([base + 0.1, base + 0.3])
        idx = voxel_grid_sample(pts, 1.0)
        assert len(idx) == 4

    def test_indices_valid_and_sorted(self, medium_cloud):
        idx = voxel_grid_sample(medium_cloud, 0.2)
        assert (np.diff(idx) > 0).all()
        assert idx.min() >= 0 and idx.max() < len(medium_cloud)

    def test_representative_near_centroid(self, rng):
        pts = rng.normal(0, 0.01, (30, 3))  # one voxel
        idx = voxel_grid_sample(pts, 1.0)
        assert len(idx) == 1
        centroid = pts.mean(axis=0)
        chosen_d = np.linalg.norm(pts[idx[0]] - centroid)
        assert chosen_d <= np.linalg.norm(pts - centroid, axis=1).min() + (
            1e-12
        )

    def test_smaller_cells_more_samples(self, medium_cloud):
        coarse = voxel_grid_sample(medium_cloud, 0.4)
        fine = voxel_grid_sample(medium_cloud, 0.1)
        assert len(fine) > len(coarse)

    def test_coverage_competitive_with_morton(self, medium_cloud):
        """Voxel sampling is even — its coverage at matched counts is
        in the same league as the Morton stride sampler."""
        from repro.core import MortonSampler

        cell = cell_size_for_target_count(medium_cloud, 128)
        voxel_idx = voxel_grid_sample(medium_cloud, cell)
        morton_idx = MortonSampler().sample(
            medium_cloud, len(voxel_idx)
        ).indices
        ratio = coverage_radius(medium_cloud, morton_idx) / (
            coverage_radius(medium_cloud, voxel_idx)
        )
        assert ratio < 2.5

    def test_rejects_bad_cell_size(self, small_cloud):
        with pytest.raises(ValueError):
            voxel_grid_sample(small_cloud, 0.0)

    def test_target_count_search(self):
        cloud = bunny_like(2000).xyz
        cell = cell_size_for_target_count(cloud, 150, tolerance=0.15)
        count = len(voxel_grid_sample(cloud, cell))
        assert abs(count - 150) <= 0.2 * 150

    def test_target_count_rejects_bad_target(self, small_cloud):
        with pytest.raises(ValueError):
            cell_size_for_target_count(small_cloud, 0)

    def test_degenerate_cloud(self):
        pts = np.ones((10, 3))
        idx = voxel_grid_sample(pts, 0.5)
        assert len(idx) == 1


def _tiny_model(seed=0):
    return DGCNNClassifier(
        num_classes=3, k=4, ec_channels=((8,), (8,)),
        emb_channels=8, head_hidden=8,
        rng=np.random.default_rng(seed),
    )


class TestCheckpointing:
    def test_roundtrip_preserves_outputs(self, tmp_path, rng):
        path = str(tmp_path / "model.npz")
        source = _tiny_model(seed=1)
        # Push some data through so BatchNorm stats are non-trivial.
        source(rng.normal(size=(2, 16, 3)))
        save_checkpoint(source, path)
        target = _tiny_model(seed=9)
        meta = load_checkpoint(target, path)
        source.eval()
        target.eval()
        x = rng.normal(size=(1, 16, 3))
        assert np.allclose(source(x).numpy(), target(x).numpy())
        assert meta["num_parameters"] == source.num_parameters()

    def test_restores_running_stats(self, tmp_path, rng):
        path = str(tmp_path / "model.npz")
        source = _tiny_model()
        for _ in range(3):
            source(rng.normal(2.0, 1.0, size=(2, 16, 3)))
        save_checkpoint(source, path)
        target = _tiny_model(seed=5)
        load_checkpoint(target, path)
        from repro.nn.layers import BatchNorm

        source_bns = [
            m for m in source.modules() if isinstance(m, BatchNorm)
        ]
        target_bns = [
            m for m in target.modules() if isinstance(m, BatchNorm)
        ]
        for a, b in zip(source_bns, target_bns):
            assert np.allclose(a.running_mean, b.running_mean)
            assert np.allclose(a.running_var, b.running_var)

    def test_rejects_architecture_mismatch(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_checkpoint(_tiny_model(), path)
        other = DGCNNClassifier(
            num_classes=3, k=4, ec_channels=((8,),),
            emb_channels=8, head_hidden=8,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(KeyError):
            load_checkpoint(other, path)

    def test_rejects_non_checkpoint(self, tmp_path):
        path = str(tmp_path / "random.npz")
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ValueError):
            load_checkpoint(_tiny_model(), path)

    def test_meta_records_version(self, tmp_path):
        import repro

        path = str(tmp_path / "model.npz")
        save_checkpoint(_tiny_model(), path)
        meta = load_checkpoint(_tiny_model(seed=3), path)
        assert meta["library_version"] == repro.__version__
