"""Tests for EdgePCConfig (repro.core.pipeline) and the DSE helpers
(repro.core.dse)."""

import numpy as np
import pytest

from repro.core.dse import (
    explore_code_bits,
    explore_window_sizes,
    pareto_front,
)
from repro.core.pipeline import EdgePCConfig


class TestEdgePCConfig:
    def test_paper_default_layers(self):
        cfg = EdgePCConfig.paper_default()
        assert cfg.uses_morton_sampling(0)
        assert not cfg.uses_morton_sampling(1)
        assert cfg.uses_morton_upsampling(3)
        assert not cfg.uses_morton_upsampling(0)
        assert cfg.uses_morton_neighbors(0)
        assert not cfg.uses_morton_neighbors(2)

    def test_baseline_is_baseline(self):
        cfg = EdgePCConfig.baseline()
        assert cfg.is_baseline
        assert not cfg.uses_morton_sampling(0)
        assert cfg.morton_memory_bytes(8192) == 0.0

    def test_paper_default_not_baseline(self):
        assert not EdgePCConfig.paper_default().is_baseline

    def test_tensor_core_variant(self):
        assert EdgePCConfig.paper_with_tensor_cores().use_tensor_cores
        assert not EdgePCConfig.paper_default().use_tensor_cores

    def test_all_layers(self):
        cfg = EdgePCConfig.all_layers(4)
        assert all(cfg.uses_morton_sampling(i) for i in range(4))
        assert all(cfg.uses_morton_neighbors(i) for i in range(4))

    def test_window_rule(self):
        cfg = EdgePCConfig(window_multiplier=4)
        assert cfg.window_for(16) == 64

    def test_window_rejects_bad_k(self):
        with pytest.raises(ValueError):
            EdgePCConfig().window_for(0)

    def test_memory_formula(self):
        cfg = EdgePCConfig(code_bits=32)
        assert cfg.morton_memory_bytes(8192) == 32 * 1024

    def test_paper_memory_budget(self):
        """Sec. 5.2.3: the per-batch Morton codes are 'only up to
        32 KB' — exactly 8192 points x 32 bits."""
        cfg = EdgePCConfig.paper_default()
        assert cfg.morton_memory_bytes(8192) <= 32 * 1024

    def test_with_window_multiplier(self):
        cfg = EdgePCConfig().with_window_multiplier(8)
        assert cfg.window_multiplier == 8
        assert cfg.sample_layers == frozenset({0})

    def test_with_code_bits(self):
        assert EdgePCConfig().with_code_bits(48).code_bits == 48

    def test_reuse_policy(self):
        policy = EdgePCConfig(reuse_distance=2).reuse_policy()
        assert policy.reuse_distance == 2

    def test_rejects_bad_window_multiplier(self):
        with pytest.raises(ValueError):
            EdgePCConfig(window_multiplier=0)

    def test_rejects_negative_layer(self):
        with pytest.raises(ValueError):
            EdgePCConfig(sample_layers={-1})

    def test_rejects_bad_code_bits(self):
        with pytest.raises(ValueError):
            EdgePCConfig(code_bits=2)

    def test_frozen(self):
        with pytest.raises(Exception):
            EdgePCConfig().code_bits = 16

    def test_layer_sets_coerced_to_frozenset(self):
        cfg = EdgePCConfig(sample_layers=[0, 1, 1])
        assert cfg.sample_layers == frozenset({0, 1})


class TestExactEngineBoundary:
    """The partition dispatch leans on this seam: the fast exact
    engines take over exactly at ``exact_fast_threshold``."""

    @pytest.mark.parametrize("threshold", [1, 2, 100, 8192])
    def test_threshold_boundary(self, threshold):
        cfg = EdgePCConfig(exact_fast_threshold=threshold)
        if threshold > 1:
            assert cfg.exact_engine_for(threshold - 1) == "brute"
        assert cfg.exact_engine_for(threshold) == "fast"
        assert cfg.exact_engine_for(threshold + 1) == "fast"

    def test_default_threshold_boundary(self):
        cfg = EdgePCConfig()
        assert cfg.exact_engine_for(8191) == "brute"
        assert cfg.exact_engine_for(8192) == "fast"
        assert cfg.exact_engine_for(8193) == "fast"

    def test_zero_points_is_brute(self):
        assert EdgePCConfig().exact_engine_for(0) == "brute"

    def test_rejects_negative_point_count(self):
        with pytest.raises(ValueError):
            EdgePCConfig().exact_engine_for(-1)


class TestPostInitValidation:
    """Every __post_init__ rejection, one constructor arg at a time."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_multiplier": 0},
            {"window_multiplier": -3},
            {"reuse_distance": -1},
            {"fc_merge_factor": 0},
            {"exact_fast_threshold": 0},
            {"exact_fast_threshold": -8192},
            {"workspace_scratch_bytes": 0},
            {"workspace_scratch_bytes": -1},
            {"code_bits": 1},
            {"sample_layers": {-1}},
            {"upsample_layers": {-2}},
            {"neighbor_layers": {0, -1}},
        ],
        ids=lambda kw: next(iter(kw.items()))[0]
        + "="
        + str(next(iter(kw.items()))[1]),
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            EdgePCConfig(**kwargs)

    def test_boundary_values_accepted(self):
        cfg = EdgePCConfig(
            window_multiplier=1,
            reuse_distance=0,
            fc_merge_factor=1,
            exact_fast_threshold=1,
            workspace_scratch_bytes=1,
        )
        assert cfg.exact_engine_for(1) == "fast"

    def test_workspace_budget_default(self):
        from repro.core.workspace import DEFAULT_SCRATCH_BYTES

        assert (
            EdgePCConfig().workspace_scratch_bytes
            == DEFAULT_SCRATCH_BYTES
        )

    def test_with_workspace_scratch_bytes(self):
        cfg = EdgePCConfig().with_workspace_scratch_bytes(64 << 20)
        assert cfg.workspace_scratch_bytes == 64 << 20


class TestDSE:
    def test_window_sweep_monotone_fnr(self, medium_cloud):
        points = explore_window_sizes(
            medium_cloud, k=8, multipliers=(1, 4, 16)
        )
        fnrs = [p.false_neighbor_ratio for p in points]
        assert fnrs == sorted(fnrs, reverse=True)

    def test_window_sweep_monotone_speedup(self, medium_cloud):
        points = explore_window_sizes(
            medium_cloud, k=8, multipliers=(1, 4, 16)
        )
        speeds = [p.search_speedup for p in points]
        assert speeds == sorted(speeds, reverse=True)
        assert speeds[0] == pytest.approx(1024 / 8)

    def test_window_sweep_query_subset(self, medium_cloud, rng):
        queries = rng.choice(1024, 64, replace=False)
        points = explore_window_sizes(
            medium_cloud, k=8, multipliers=(2,), query_indices=queries
        )
        assert 0 <= points[0].false_neighbor_ratio <= 1

    def test_code_bits_sweep_memory_linear(self, small_cloud):
        points = explore_code_bits(
            small_cloud, k=8, code_bits_options=(12, 24, 48)
        )
        mems = [p.memory_bytes for p in points]
        assert mems == sorted(mems)
        assert mems[0] == len(small_cloud) * 12 / 8

    def test_code_bits_sweep_fnr_saturates(self, medium_cloud):
        """Sec. 6.1.3: FNR falls with code width and saturates around
        32 bits — 63-bit codes bring little over 32-bit ones."""
        points = explore_code_bits(
            medium_cloud, k=8, code_bits_options=(12, 32, 63)
        )
        fnr = {p.code_bits: p.false_neighbor_ratio for p in points}
        assert fnr[32] <= fnr[12] + 0.02
        assert abs(fnr[63] - fnr[32]) < 0.08

    def test_pareto_front_removes_dominated(self, medium_cloud):
        points = explore_window_sizes(
            medium_cloud, k=8, multipliers=(1, 2, 4, 8)
        )
        front = pareto_front(points)
        # The sweep is monotone on both axes, so nothing dominates.
        assert len(front) == len(points)

    def test_pareto_front_with_dominated_point(self):
        from repro.core.dse import WindowDesignPoint

        good = WindowDesignPoint(8, 1.0, 0.1, 10.0)
        bad = WindowDesignPoint(16, 2.0, 0.2, 5.0)
        front = pareto_front([good, bad])
        assert front == [good]
