"""Tests for the high-level pipeline API (repro.pipeline) and the new
Sec. 5.4 config knobs (sorted grouping, channel merge)."""

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.nn import DGCNNClassifier, PointNet2Segmentation, SAConfig
from repro.pipeline import EdgePCPipeline
from repro.runtime import PipelineProfiler

TINY_SA = (
    SAConfig(0.5, 4, 1.5, (8, 8)),
    SAConfig(0.5, 4, 3.0, (16, 16)),
)


def _pn2(config):
    return PointNet2Segmentation(
        num_classes=3, sa_configs=TINY_SA, edgepc=config,
        head_hidden=8, rng=np.random.default_rng(0),
    )


def _dgcnn(config):
    return DGCNNClassifier(
        num_classes=4, k=4, ec_channels=((8,), (8,)),
        emb_channels=16, head_hidden=8, edgepc=config,
        rng=np.random.default_rng(0),
    )


class TestEdgePCPipeline:
    def test_infer_returns_profiled_result(self, rng):
        pipeline = EdgePCPipeline(_pn2(EdgePCConfig.paper_default()))
        result = pipeline.infer(rng.normal(size=(2, 64, 3)))
        assert result.logits.shape == (2, 64, 3)
        assert result.predictions.shape == (2, 64)
        assert result.latency_ms > 0
        assert result.energy_j > 0

    def test_single_cloud_rides_the_batch_path_at_b1(self, rng):
        # (N, 3) input goes through the same (B, N, 3) code path the
        # serving micro-batcher uses, with outputs keeping the batch
        # axis and metrics emitted exactly once.
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        pipeline = EdgePCPipeline(
            _pn2(EdgePCConfig.paper_default()), metrics=registry
        )
        cloud = rng.normal(size=(64, 3))
        single = pipeline.infer(cloud)
        assert single.logits.shape == (1, 64, 3)
        assert single.predictions.shape == (1, 64)
        assert registry.counter("pipeline_batches_total").value == 1
        assert registry.counter("pipeline_clouds_total").value == 1
        batched = pipeline.infer(cloud[None, :, :])
        np.testing.assert_allclose(
            single.logits, batched.logits, rtol=1e-12, atol=1e-12
        )

    def test_config_defaults_from_model(self):
        config = EdgePCConfig.paper_default()
        pipeline = EdgePCPipeline(_pn2(config))
        assert pipeline.config is config

    def test_explicit_config_overrides(self):
        config = EdgePCConfig.paper_with_tensor_cores()
        pipeline = EdgePCPipeline(_pn2(EdgePCConfig.baseline()), config)
        assert pipeline.config.use_tensor_cores

    def test_rejects_model_without_config(self):
        class Bare:
            pass

        with pytest.raises(ValueError):
            EdgePCPipeline(Bare())

    def test_infer_restores_training_mode(self, rng):
        model = _pn2(EdgePCConfig.baseline())
        pipeline = EdgePCPipeline(model)
        pipeline.infer(rng.normal(size=(1, 32, 3)))
        assert model.training

    def test_compare_with_baseline(self, rng):
        xyz = rng.normal(size=(2, 1024, 3))
        baseline = EdgePCPipeline(_pn2(EdgePCConfig.baseline()))
        optimized = EdgePCPipeline(
            _pn2(
                EdgePCConfig(
                    sample_layers={0}, upsample_layers={1},
                    neighbor_layers={0},
                )
            )
        )
        report = optimized.compare_with(baseline, xyz)
        assert report.sample_neighbor_speedup > 1.0

    def test_throughput_estimate(self, rng):
        pipeline = EdgePCPipeline(_dgcnn(EdgePCConfig.paper_default()))
        batches_per_s, clouds_per_s = pipeline.throughput_estimate(
            rng.normal(size=(4, 32, 3))
        )
        assert clouds_per_s == pytest.approx(4 * batches_per_s)


class TestPipelineRobustness:
    def test_record_restores_training_mode(self, rng):
        """record() must not clobber the mode train() left behind."""
        model = _pn2(EdgePCConfig.baseline())
        pipeline = EdgePCPipeline(model)
        assert model.training
        pipeline.record(rng.normal(size=(1, 32, 3)))
        assert model.training

    def test_record_leaves_eval_mode_alone(self, rng):
        model = _pn2(EdgePCConfig.baseline())
        model.eval()
        pipeline = EdgePCPipeline(model)
        pipeline.record(rng.normal(size=(1, 32, 3)))
        assert not model.training

    def test_throughput_estimate_typed(self, rng):
        from repro.pipeline import ThroughputEstimate

        pipeline = EdgePCPipeline(_dgcnn(EdgePCConfig.paper_default()))
        estimate = pipeline.throughput_estimate(
            rng.normal(size=(4, 32, 3))
        )
        assert isinstance(estimate, ThroughputEstimate)
        assert estimate.batches_per_second > 0
        assert estimate.latency_ms == pytest.approx(
            1e3 / estimate.batches_per_second
        )

    def test_zero_throughput_latency_is_inf(self):
        from repro.pipeline import ThroughputEstimate

        estimate = ThroughputEstimate(
            batches_per_second=0.0, clouds_per_second=0.0
        )
        assert estimate.latency_ms == float("inf")

    def test_empty_trace_error(self, rng):
        from repro.nn.layers import Module
        from repro.pipeline import EmptyTraceError

        class Idle(Module):
            def __init__(self):
                super().__init__()
                self.edgepc = EdgePCConfig.baseline()

            def forward(self, xyz, recorder=None):
                return np.zeros((xyz.shape[0], 2))

        pipeline = EdgePCPipeline(Idle())
        with pytest.raises(EmptyTraceError):
            pipeline.throughput_estimate(rng.normal(size=(1, 8, 3)))
        assert issubclass(EmptyTraceError, ValueError)

    def test_infer_rejects_nan_by_default(self, rng):
        from repro.robustness import CloudValidationError

        pipeline = EdgePCPipeline(_pn2(EdgePCConfig.paper_default()))
        xyz = rng.normal(size=(1, 32, 3))
        xyz[0, 3, 1] = np.nan
        with pytest.raises(CloudValidationError, match="1 of 32"):
            pipeline.infer(xyz)

    def test_infer_repair_policy_serves_batch(self, rng):
        from repro.robustness import ValidationPolicy

        pipeline = EdgePCPipeline(
            _pn2(EdgePCConfig.paper_default()),
            validation=ValidationPolicy.repair(),
        )
        xyz = rng.normal(size=(1, 32, 3))
        xyz[0, 3, 1] = np.nan
        result = pipeline.infer(xyz)
        assert np.isfinite(result.logits).all()
        assert result.validation[0].n_output == 32

    def test_stage_ops_recorded(self, rng):
        pipeline = EdgePCPipeline(_pn2(EdgePCConfig.paper_default()))
        result = pipeline.infer(rng.normal(size=(1, 32, 3)))
        assert "morton_sort" in result.stage_ops
        baseline = EdgePCPipeline(_pn2(EdgePCConfig.baseline()))
        assert "fps" in baseline.infer(
            rng.normal(size=(1, 32, 3))
        ).stage_ops


class TestSortedGroupingKnob:
    def test_output_unchanged(self, rng):
        """Row-sorting the neighbor indices is semantically a no-op
        for the max-pooled aggregation."""
        xyz = rng.normal(size=(1, 64, 3))
        plain = _dgcnn(EdgePCConfig.baseline())
        sorted_model = _dgcnn(
            EdgePCConfig(
                sample_layers=frozenset(),
                upsample_layers=frozenset(),
                neighbor_layers=frozenset(),
                reuse_distance=0,
                sorted_grouping=True,
            )
        )
        sorted_model.load_state_dict(plain.state_dict())
        plain.eval()
        sorted_model.eval()
        assert np.allclose(
            plain(xyz).numpy(), sorted_model(xyz).numpy()
        )

    def test_gather_priced_cheaper(self, rng):
        from repro.nn import StageRecorder

        xyz = rng.normal(size=(1, 64, 3))
        profiler = PipelineProfiler()
        configs = {
            False: EdgePCConfig.paper_default(),
            True: EdgePCConfig(sorted_grouping=True),
        }
        grouping = {}
        for flag, config in configs.items():
            recorder = StageRecorder()
            _dgcnn(config)(xyz, recorder=recorder)
            grouping[flag] = profiler.breakdown(
                recorder, config
            ).grouping_s
        assert grouping[True] < grouping[False]
        ratio = grouping[False] / grouping[True]
        assert ratio == pytest.approx(
            profiler.device.sorted_gather_speedup, rel=1e-6
        )


class TestChannelMergeKnob:
    def test_merge_accelerates_feature_stage(self):
        from repro.core import EdgePCConfig
        from repro.workloads import standard_workloads, trace

        spec = standard_workloads()["W6"]
        profiler = PipelineProfiler()
        plain = EdgePCConfig.paper_with_tensor_cores()
        merged = EdgePCConfig(
            use_tensor_cores=True, fc_merge_factor=10
        )
        t_plain = profiler.breakdown(
            trace(spec, plain), plain
        ).feature_s
        t_merged = profiler.breakdown(
            trace(spec, merged), merged
        ).feature_s
        assert t_merged < t_plain

    def test_merge_without_tensor_cores_is_noop(self):
        from repro.workloads import standard_workloads, trace

        spec = standard_workloads()["W6"]
        profiler = PipelineProfiler()
        plain = EdgePCConfig.paper_default()
        merged = EdgePCConfig(fc_merge_factor=10)
        assert profiler.breakdown(
            trace(spec, merged), merged
        ).feature_s == pytest.approx(
            profiler.breakdown(trace(spec, plain), plain).feature_s
        )

    def test_insights_config(self):
        config = EdgePCConfig.with_architectural_insights()
        assert config.use_tensor_cores
        assert config.sorted_grouping
        assert config.fc_merge_factor == 10

    def test_rejects_bad_merge_factor(self):
        with pytest.raises(ValueError):
            EdgePCConfig(fc_merge_factor=0)
