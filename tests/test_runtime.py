"""Tests for the edge-device model (repro.runtime.device), cost model
(repro.runtime.cost), and profiler (repro.runtime.profiler)."""

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.nn.recorder import (
    STAGE_FEATURE,
    STAGE_NEIGHBOR,
    STAGE_SAMPLE,
    StageEvent,
    StageRecorder,
)
from repro.runtime import (
    CostModel,
    DeviceSpec,
    PipelineProfiler,
    compare,
    xavier,
)


class TestDeviceSpec:
    def test_default_is_valid(self):
        spec = xavier()
        assert spec.cuda_flops > 0

    def test_tensor_core_threshold(self):
        spec = xavier()
        assert spec.tensor_core_utilization(12) == 0.0
        assert spec.tensor_core_utilization(16) > 0.0

    def test_tensor_core_utilization_ramps(self):
        spec = xavier()
        assert spec.tensor_core_utilization(
            32
        ) < spec.tensor_core_utilization(128)

    def test_tensor_core_utilization_saturates(self):
        spec = xavier()
        assert spec.tensor_core_utilization(
            1000
        ) == spec.tc_max_utilization

    def test_paper_merge_example(self):
        """Sec. 5.4.1: a conv at 12 input channels runs on CUDA cores;
        merged to 120 channels it reaches ~40% utilization and roughly
        halves its latency."""
        spec = xavier()
        flops = 2.0 * 32 * 1000 * 32 * 12 * 64
        narrow = spec.matmul_time(flops, 12, use_tensor_cores=True)
        wide = spec.matmul_time(flops, 120, use_tensor_cores=True)
        assert spec.tensor_core_utilization(120) == pytest.approx(
            0.4, abs=0.05
        )
        assert 1.8 < narrow / wide < 2.8

    def test_matmul_without_tc(self):
        spec = xavier()
        assert spec.matmul_time(1e9, 128, False) == pytest.approx(
            1e9 / spec.cuda_flops
        )

    def test_overrides(self):
        spec = xavier().with_overrides(cuda_flops=1.0)
        assert spec.cuda_flops == 1.0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            DeviceSpec(cuda_flops=0.0)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            DeviceSpec(tc_max_utilization=1.5)


class TestCostModel:
    @pytest.fixture
    def cm(self):
        return CostModel(xavier())

    def test_fps_price_scales_with_batch(self, cm):
        e1 = StageEvent(
            STAGE_SAMPLE, "fps", 0,
            {"n_points": 1000, "n_samples": 100, "batch": 1},
        )
        e2 = StageEvent(
            STAGE_SAMPLE, "fps", 0,
            {"n_points": 1000, "n_samples": 100, "batch": 4},
        )
        assert cm.price(e2) == pytest.approx(4 * cm.price(e1))

    def test_fps_calibration_bunny(self, cm):
        """Sec. 4.2: FPS sampling 1024 of 40256 points ~ 81.7 ms."""
        event = StageEvent(
            STAGE_SAMPLE, "fps", 0,
            {"n_points": 40256, "n_samples": 1024, "batch": 1},
        )
        assert cm.price(event) == pytest.approx(81.7e-3, rel=0.15)

    def test_morton_gen_calibration(self, cm):
        """Sec. 5.1.2: generating codes for 8192 points ~ 0.1 ms."""
        event = StageEvent(
            STAGE_SAMPLE, "morton_gen", 0,
            {"n_points": 8192, "batch": 1},
        )
        assert cm.price(event) == pytest.approx(0.1e-3, rel=0.1)

    def test_knn_dim_factor(self, cm):
        low = StageEvent(
            STAGE_NEIGHBOR, "knn", 0,
            {"n_queries": 100, "n_candidates": 100, "dim": 3,
             "batch": 1},
        )
        high = StageEvent(
            STAGE_NEIGHBOR, "knn", 0,
            {"n_queries": 100, "n_candidates": 100, "dim": 64,
             "batch": 1},
        )
        assert cm.price(high) == pytest.approx(
            cm.price(low) * 64 / 3
        )

    def test_window_cheaper_than_brute(self, cm):
        brute = StageEvent(
            STAGE_NEIGHBOR, "ball_query", 0,
            {"n_queries": 1024, "n_candidates": 8192, "k": 32,
             "batch": 1},
        )
        window = StageEvent(
            STAGE_NEIGHBOR, "morton_window", 0,
            {"n_queries": 1024, "window": 64, "k": 32, "batch": 1},
        )
        assert cm.price(window) < cm.price(brute) / 50

    def test_interp_morton_cheaper_than_exact(self, cm):
        exact = StageEvent(
            STAGE_SAMPLE, "interp_exact", 0,
            {"n_points": 8192, "n_samples": 1024, "batch": 1},
        )
        approx = StageEvent(
            STAGE_SAMPLE, "interp_morton", 0,
            {"n_points": 8192, "batch": 1},
        )
        ratio = cm.price(exact) / cm.price(approx)
        assert 4.0 < ratio < 7.0  # Fig. 9's FP4 ~ 5.2x

    def test_matmul_respects_tc_flag(self, cm):
        event = StageEvent(
            STAGE_FEATURE, "matmul", 0,
            {"rows": 1000, "c_in": 128, "c_out": 128,
             "flops": 2.0 * 1000 * 128 * 128},
        )
        assert cm.price(event, use_tensor_cores=True) < cm.price(
            event, use_tensor_cores=False
        )

    def test_unknown_op_raises(self, cm):
        event = StageEvent(STAGE_SAMPLE, "warp_drive", 0, {})
        with pytest.raises(ValueError):
            cm.price(event)

    def test_reuse_nearly_free(self, cm):
        reuse = StageEvent(
            STAGE_NEIGHBOR, "reuse", 0,
            {"n_queries": 8192, "k": 20, "batch": 1},
        )
        knn = StageEvent(
            STAGE_NEIGHBOR, "knn", 0,
            {"n_queries": 8192, "n_candidates": 8192, "dim": 64,
             "batch": 1},
        )
        assert cm.price(reuse) < cm.price(knn) / 1000


def _toy_trace(optimized: bool) -> StageRecorder:
    rec = StageRecorder()
    if optimized:
        rec.record(STAGE_SAMPLE, "morton_gen", 0, n_points=8192, batch=1)
        rec.record(STAGE_SAMPLE, "morton_sort", 0, n_points=8192, batch=1)
        rec.record(STAGE_SAMPLE, "uniform_pick", 0, n_samples=1024,
                   batch=1)
        rec.record(STAGE_NEIGHBOR, "morton_window", 0, n_queries=1024,
                   window=64, k=32, batch=1)
    else:
        rec.record(STAGE_SAMPLE, "fps", 0, n_points=8192,
                   n_samples=1024, batch=1)
        rec.record(STAGE_NEIGHBOR, "ball_query", 0, n_queries=1024,
                   n_candidates=8192, k=32, batch=1)
    rec.record(STAGE_FEATURE, "matmul", 0, rows=1024, c_in=64,
               c_out=64, flops=2.0 * 1024 * 64 * 64)
    return rec


class TestProfiler:
    def test_breakdown_stages(self):
        profiler = PipelineProfiler()
        breakdown = profiler.breakdown(
            _toy_trace(False), EdgePCConfig.baseline()
        )
        assert breakdown.sample_s > 0
        assert breakdown.neighbor_s > 0
        assert breakdown.feature_s > 0
        assert breakdown.total_s == pytest.approx(
            breakdown.sample_s
            + breakdown.neighbor_s
            + breakdown.grouping_s
            + breakdown.feature_s
        )

    def test_fraction_in_unit_interval(self):
        profiler = PipelineProfiler()
        breakdown = profiler.breakdown(
            _toy_trace(False), EdgePCConfig.baseline()
        )
        assert 0 < breakdown.sample_and_neighbor_fraction < 1

    def test_per_layer_keys(self):
        profiler = PipelineProfiler()
        breakdown = profiler.breakdown(
            _toy_trace(False), EdgePCConfig.baseline()
        )
        assert "sample[0]" in breakdown.per_layer_s

    def test_optimized_trace_is_faster(self):
        profiler = PipelineProfiler()
        base = profiler.breakdown(
            _toy_trace(False), EdgePCConfig.baseline()
        )
        opt = profiler.breakdown(
            _toy_trace(True), EdgePCConfig.paper_default()
        )
        assert opt.sample_and_neighbor_s < base.sample_and_neighbor_s

    def test_energy_components(self):
        profiler = PipelineProfiler()
        energy = profiler.energy(
            _toy_trace(False), EdgePCConfig.baseline()
        )
        assert energy.compute_j > 0
        assert energy.memory_j > 0
        assert energy.total_j == pytest.approx(
            energy.compute_j + energy.memory_j
        )

    def test_reuse_raises_memory_power(self):
        profiler = PipelineProfiler()
        rec = StageRecorder()
        rec.record(STAGE_NEIGHBOR, "reuse", 1, n_queries=1000, k=20,
                   batch=1)
        with_reuse = profiler.energy(rec, EdgePCConfig.paper_default())
        rec2 = StageRecorder()
        rec2.record(STAGE_NEIGHBOR, "knn", 1, n_queries=1,
                    n_candidates=1, dim=3, batch=1)
        without = profiler.energy(rec2, EdgePCConfig.baseline())
        device = profiler.device
        # Memory power rate: reuse trace pays the higher rate.
        assert with_reuse.memory_j / profiler.breakdown(
            rec, EdgePCConfig.paper_default()
        ).total_s == pytest.approx(device.memory_power_reuse_w)
        assert without.memory_j / profiler.breakdown(
            rec2, EdgePCConfig.baseline()
        ).total_s == pytest.approx(device.memory_power_w)

    def test_compare_report(self):
        profiler = PipelineProfiler()
        report = compare(
            profiler,
            _toy_trace(False), EdgePCConfig.baseline(),
            _toy_trace(True), EdgePCConfig.paper_default(),
        )
        assert report.sample_neighbor_speedup > 1.0
        assert report.end_to_end_speedup > 1.0
        assert 0 < report.energy_saving_fraction < 1

    def test_tensor_cores_shrink_feature_stage(self):
        profiler = PipelineProfiler()
        trace = _toy_trace(True)
        plain = profiler.breakdown(trace, EdgePCConfig.paper_default())
        tc = profiler.breakdown(
            trace, EdgePCConfig.paper_with_tensor_cores()
        )
        assert tc.feature_s < plain.feature_s
        assert tc.sample_s == plain.sample_s
