"""End-to-end fault-injection matrix for the guarded pipeline.

Drives every :func:`~repro.robustness.faults.standard_faults` spec
through :class:`~repro.robustness.guard.GuardedPipeline` wrapping both
classifier families, and asserts the contract: the guard never raises
on bad input, never returns non-finite logits, and falls back to the
exact kernels exactly when a probe (or the last-ditch retry) says so.
"""

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.nn import DGCNNClassifier, PointNet2Classifier, SAConfig
from repro.pipeline import EdgePCPipeline
from repro.robustness import (
    FaultInjector,
    FaultSpec,
    GuardedPipeline,
    GuardThresholds,
    ValidationPolicy,
    standard_faults,
)
from repro.robustness.guard import CircuitBreaker

BATCH = 2
N_POINTS = 64


def _pn2_cls():
    return PointNet2Classifier(
        num_classes=3,
        sa_configs=(SAConfig(0.5, 4, 1.0, (8, 8)),),
        edgepc=EdgePCConfig.paper_default(),
        head_hidden=8,
        rng=np.random.default_rng(0),
    )


def _dgcnn_cls():
    return DGCNNClassifier(
        num_classes=3, k=4, ec_channels=((8,), (8,)),
        emb_channels=16, head_hidden=8,
        edgepc=EdgePCConfig.paper_default(),
        rng=np.random.default_rng(0),
    )


MODELS = {"pointnet2_cls": _pn2_cls, "dgcnn_cls": _dgcnn_cls}

#: Thresholds sized for the tiny test clouds.
TINY_PROBE = dict(probe_points=32, probe_samples=8, probe_k=4)


def _guarded(make_model, **overrides):
    params = dict(TINY_PROBE)
    params.update(overrides)
    return GuardedPipeline(
        EdgePCPipeline(make_model()),
        policy=ValidationPolicy.repair(),
        thresholds=GuardThresholds(**params),
        seed=0,
    )


class TestFaultMatrix:
    """The acceptance matrix: every fault spec x every model family."""

    @pytest.mark.parametrize("model_name", sorted(MODELS))
    @pytest.mark.parametrize(
        "spec", standard_faults(), ids=lambda s: s.name
    )
    def test_never_crashes_never_nan(self, model_name, spec, rng):
        guard = _guarded(MODELS[model_name])
        clean = rng.normal(size=(BATCH, N_POINTS, 3))
        faulted = FaultInjector(seed=7).apply_batch(clean, spec)
        result = guard.infer(faulted)
        if result.ok:
            assert np.isfinite(result.logits).all()
            assert result.logits.shape[0] == BATCH
            assert result.predictions.shape == (BATCH,)
            assert result.effective_config is not None
        else:
            # Structured rejection, not a crash: a reason and the
            # validation report that caused it.
            assert result.rejection_reason
            assert result.validation
            with pytest.raises(ValueError):
                result.logits

    def test_empty_sweep_is_structured_rejection(self, rng):
        spec = next(
            s for s in standard_faults() if s.name == "empty_sweep"
        )
        guard = _guarded(_pn2_cls)
        faulted = FaultInjector(seed=7).apply_batch(
            rng.normal(size=(BATCH, N_POINTS, 3)), spec
        )
        result = guard.infer(faulted)
        assert result.rejected
        assert "point" in result.rejection_reason
        assert guard.batches_rejected == 1
        assert guard.batches_served == 0

    def test_injection_is_deterministic(self, rng):
        spec = standard_faults()[0]
        cloud = rng.normal(size=(N_POINTS, 3))
        a = FaultInjector(seed=3).apply(cloud, spec)
        b = FaultInjector(seed=3).apply(cloud, spec)
        np.testing.assert_array_equal(a, b)
        c = FaultInjector(seed=4).apply(cloud, spec)
        assert not np.array_equal(a, c, equal_nan=True)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("bogus", "teleportation")


class TestProbeFallback:
    """Probe trips must demonstrably switch stages to exact kernels."""

    def test_trip_switches_pn2_to_exact(self, rng):
        # Impossible thresholds: every probe trips.
        guard = _guarded(
            _pn2_cls,
            max_density_cv=-1.0,
            max_false_neighbor_rate=-1.0,
        )
        result = guard.infer(rng.normal(size=(1, N_POINTS, 3)))
        assert result.ok
        assert set(result.degraded_stages) == {"sampling", "neighbor"}
        assert all(
            d.reason == "probe_tripped" for d in result.degradations
        )
        config = result.effective_config
        assert not config.sample_layers
        assert not config.neighbor_layers
        # The exact kernels actually ran.
        ops = result.result.stage_ops
        assert "fps" in ops
        assert "ball_query" in ops
        assert "morton_sort" not in ops
        assert "morton_window" not in ops

    def test_trip_switches_dgcnn_neighbor_to_exact(self, rng):
        guard = _guarded(
            _dgcnn_cls,
            max_density_cv=-1.0,
            max_false_neighbor_rate=-1.0,
        )
        result = guard.infer(rng.normal(size=(1, N_POINTS, 3)))
        assert result.ok
        # DGCNN has no sampling stage; only the neighbor guard applies.
        assert result.degraded_stages == ("neighbor",)
        assert result.effective_config.reuse_distance == 0
        ops = result.result.stage_ops
        assert "knn" in ops
        assert "morton_window" not in ops

    def test_clean_input_stays_approximate(self, rng):
        # Generous thresholds: nothing trips, the Morton path runs.
        guard = _guarded(
            _pn2_cls,
            max_density_cv=50.0,
            max_false_neighbor_rate=1.0,
        )
        result = guard.infer(rng.normal(size=(1, N_POINTS, 3)))
        assert result.ok
        assert not result.degradations
        assert result.effective_config == guard.pipeline.config
        assert "morton_sort" in result.result.stage_ops
        assert "fps" not in result.result.stage_ops

    def test_degradation_log_accumulates(self, rng):
        guard = _guarded(_pn2_cls, max_density_cv=-1.0)
        xyz = rng.normal(size=(1, N_POINTS, 3))
        guard.infer(xyz)
        guard.infer(xyz)
        assert len(guard.degradation_log) >= 2
        assert {d.batch_index for d in guard.degradation_log} == {0, 1}
        assert "sampling -> exact" in str(guard.degradation_log[0])


class TestCircuitBreaker:
    def test_opens_after_consecutive_trips(self):
        breaker = CircuitBreaker(trip_limit=3, cooldown=2)
        for _ in range(2):
            assert breaker.before_batch() == "probe"
            breaker.record_trip()
            assert breaker.state == "closed"
        breaker.before_batch()
        breaker.record_trip()
        assert breaker.state == "open"
        assert breaker.forces_exact

    def test_pass_resets_consecutive_count(self):
        breaker = CircuitBreaker(trip_limit=2, cooldown=2)
        breaker.record_trip()
        breaker.record_pass()
        breaker.record_trip()
        assert breaker.state == "closed"
        assert breaker.total_trips == 2

    def test_cooldown_then_half_open(self):
        breaker = CircuitBreaker(trip_limit=1, cooldown=2)
        breaker.before_batch()
        breaker.record_trip()
        assert breaker.state == "open"
        assert breaker.before_batch() == "forced"
        assert breaker.before_batch() == "probe"
        assert breaker.state == "half_open"

    def test_half_open_trip_reopens(self):
        breaker = CircuitBreaker(trip_limit=2, cooldown=1)
        breaker.record_trip()
        breaker.record_trip()
        breaker.before_batch()  # cooldown elapses -> half_open
        breaker.record_trip()
        assert breaker.state == "open"
        assert breaker.remaining_cooldown == 1

    def test_half_open_pass_closes(self):
        breaker = CircuitBreaker(trip_limit=1, cooldown=1)
        breaker.record_trip()
        breaker.before_batch()
        breaker.record_pass()
        assert breaker.state == "closed"

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            CircuitBreaker(trip_limit=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)


class TestBreakerPinning:
    """Over a batch stream, repeated trips pin the stage to exact and
    the cooldown re-probe path runs."""

    def test_pin_after_trip_limit_then_cooldown(self, rng):
        guard = _guarded(
            _pn2_cls,
            max_density_cv=-1.0,  # sampling probe always trips
            max_false_neighbor_rate=1.0,  # neighbor probe never trips
            trip_limit=2,
            cooldown=2,
        )
        xyz = rng.normal(size=(1, N_POINTS, 3))
        reasons = []
        for _ in range(5):
            result = guard.infer(xyz)
            assert result.ok
            sampling = [
                d for d in result.degradations
                if d.stage == "sampling"
            ]
            assert len(sampling) == 1
            reasons.append(sampling[0].reason)
        # Batches 0-1 trip the probe (opening the breaker on batch 1),
        # batch 2 is forced exact during cooldown, batch 3 re-probes in
        # half_open (trips again, re-opening), batch 4 is forced again.
        assert reasons == [
            "probe_tripped", "probe_tripped", "circuit_open",
            "probe_tripped", "circuit_open",
        ]
        assert guard.breaker_states["sampling"] == "open"
        assert guard.breaker_states["neighbor"] == "closed"


class TestRejectPolicy:
    def test_reject_policy_rejects_nan_batch(self, rng):
        guard = GuardedPipeline(
            EdgePCPipeline(_pn2_cls()),
            policy=ValidationPolicy.reject(),
            thresholds=GuardThresholds(**TINY_PROBE),
        )
        xyz = rng.normal(size=(1, N_POINTS, 3))
        xyz[0, 5, 1] = np.nan
        result = guard.infer(xyz)
        assert result.rejected
        assert "non-finite" in result.rejection_reason
        kinds = {
            issue.kind
            for report in result.validation
            for issue in report.issues
        }
        assert "non_finite" in kinds

    def test_repair_policy_serves_same_batch(self, rng):
        guard = _guarded(_pn2_cls)
        xyz = rng.normal(size=(1, N_POINTS, 3))
        xyz[0, 5, 1] = np.nan
        result = guard.infer(xyz)
        assert result.ok
        assert np.isfinite(result.logits).all()
        # The repaired cloud was padded back to full size.
        assert result.validation[0].n_output == N_POINTS
        assert result.validation[0].dropped == 0
