"""Tests for the whole-program concurrency analyzer (CONC-5xx).

Covers the per-rule bad/good fixtures, the ProjectContext lock
inventory and order graph over the real ``src/repro`` tree (which must
self-host clean), parallel ``--jobs`` equivalence, byte-identical
``--out`` reports, stale-baseline warnings with ``--prune-baseline``,
and the docs/serving.md threading-model table staying in sync with
the analyzer's lock-order graph.
"""

import io
import json
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    ProjectContext,
    all_rules,
    collect,
    lint_file,
    lint_paths,
    lint_source,
    run_lint,
)

REPO = Path(__file__).resolve().parents[1]
DATA = REPO / "tests" / "data" / "lint"
BAD = DATA / "bad"
GOOD = DATA / "good"
SRC = REPO / "src" / "repro"

# rule id -> (fixture file relative to bad/ and good/, findings in bad)
CONC_FIXTURES = {
    "CONC-501": ("repro/serving/guarded_state.py", 1),
    # One two-lock cycle plus a self-acquire reported at both frames
    # (the holder and the re-acquirer).
    "CONC-502": ("repro/serving/lock_cycles.py", 3),
    "CONC-503": ("repro/serving/cond_waits.py", 1),
    "CONC-504": ("repro/serving/workspace_escape.py", 1),
    "CONC-505": ("repro/serving/blocking_calls.py", 2),
}


def _conc_rules():
    return tuple(
        rule
        for rule in all_rules()
        if rule.rule_id.startswith("CONC-")
    )


class TestConcFixtures:
    def test_all_five_rules_registered(self):
        assert {rule.rule_id for rule in _conc_rules()} == set(
            CONC_FIXTURES
        )

    @pytest.mark.parametrize("rule_id", sorted(CONC_FIXTURES))
    def test_fires_on_bad_fixture(self, rule_id):
        relpath, expected = CONC_FIXTURES[rule_id]
        findings = lint_file(str(BAD / relpath))
        hits = [f for f in findings if f.rule == rule_id]
        assert len(hits) == expected

    @pytest.mark.parametrize("rule_id", sorted(CONC_FIXTURES))
    def test_silent_on_good_fixture(self, rule_id):
        relpath, _ = CONC_FIXTURES[rule_id]
        assert lint_file(str(GOOD / relpath)) == []

    def test_workspace_rule_scoped_to_threaded_code(self):
        # The same unclaimed Workspace outside repro.serving (and
        # outside any module that spawns threads) is not flagged:
        # single-threaded scratch cannot escape to another thread.
        source = (
            BAD / "repro/serving/workspace_escape.py"
        ).read_text()
        findings = lint_source("repro/sim/workspace_escape.py", source)
        assert findings == []

    def test_messages_are_line_independent(self):
        # Fingerprints hash path::rule::message; a message embedding
        # line numbers would churn on unrelated edits above it.
        for relpath, _ in CONC_FIXTURES.values():
            for finding in lint_file(str(BAD / relpath)):
                assert not re.search(r"line \d+", finding.message)
                assert str(finding.line) not in finding.message.split(
                    "'"
                )


class TestProjectContextOnSrc:
    """The analyzer's view of the real serving stack."""

    @pytest.fixture(scope="class")
    def project(self):
        return ProjectContext.from_paths([str(SRC)])

    def test_serving_locks_discovered(self, project):
        assert project.lock_kinds["RequestQueue.condition"] == (
            "Condition"
        )
        assert project.lock_kinds["ServerFleet._cond"] == "Condition"
        assert (
            project.lock_kinds["InferenceServer._dispatch_lock"]
            == "Lock"
        )
        assert (
            project.lock_kinds["InferenceServer._records_lock"]
            == "Lock"
        )
        assert project.lock_kinds["MetricsRegistry._lock"] == "Lock"

    def test_lock_order_graph_is_acyclic(self, project):
        edges = project.lock_order_edges()
        assert ("RequestQueue.condition", "MetricsRegistry._lock") in (
            edges
        )
        # No pair appears in both orders, and no self-acquires of a
        # plain Lock survive in the tree.
        assert not {(b, a) for a, b in edges} & set(edges)
        assert project.self_acquires == []

    def test_src_self_hosts_clean_on_conc_rules(self):
        findings = lint_paths([str(SRC)], rules=_conc_rules())
        assert findings == []


class TestJobsAndDeterminism:
    def test_jobs_output_is_identical(self):
        serial = lint_paths([str(BAD)], jobs=1)
        threaded = lint_paths([str(BAD)], jobs=4)
        assert serial == threaded

    def test_out_report_is_byte_identical(self, tmp_path):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        stream = io.StringIO()
        run_lint(
            [str(BAD)], out=str(out_a), stream=stream, jobs=1
        )
        run_lint(
            [str(BAD)], out=str(out_b), stream=stream, jobs=4
        )
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_cli_concurrency_flag_filters_rules(
        self, tmp_path, capsys
    ):
        out = tmp_path / "conc.json"
        code = main(
            [
                "lint",
                "--concurrency",
                "--jobs",
                "2",
                "--format",
                "json",
                "--out",
                str(out),
                str(BAD / "repro" / "serving"),
            ]
        )
        assert code == 1  # the CONC fixtures are errors
        report = json.loads(out.read_text())
        assert all(
            rule["rule"].startswith("CONC-")
            for rule in report["rules"]
        )
        fired = {f["rule"] for f in report["findings"]}
        assert fired == set(CONC_FIXTURES)
        capsys.readouterr()

    def test_cli_concurrency_self_host_src_is_clean(self, capsys):
        code = main(["lint", "--concurrency", str(SRC)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out


class TestStaleBaseline:
    def _baseline_with_dead_entry(self, path, findings):
        baseline = Baseline.from_findings(
            findings, note="test baseline"
        )
        baseline.counts["deadbeefdeadbeef"] = 1
        baseline.entries.append(
            {
                "fingerprint": "deadbeefdeadbeef",
                "count": 1,
                "rule": "PERF-101",
                "path": "src/repro/gone.py",
                "message": "a finding that was fixed long ago",
            }
        )
        baseline.save(str(path))
        return baseline

    def test_runner_warns_on_dead_entries(self, tmp_path):
        target = BAD / "repro" / "serving" / "guarded_state.py"
        findings = lint_file(str(target))
        baseline_path = tmp_path / "baseline.json"
        self._baseline_with_dead_entry(baseline_path, findings)
        report = collect([str(target)], str(baseline_path))
        assert report.findings == []
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0]["fingerprint"] == (
            "deadbeefdeadbeef"
        )
        stream = io.StringIO()
        code = run_lint(
            [str(target)],
            baseline=str(baseline_path),
            stream=stream,
        )
        assert code == 0
        assert "no longer fires" in stream.getvalue()

    def test_prune_baseline_drops_dead_entries(self, tmp_path):
        target = BAD / "repro" / "serving" / "guarded_state.py"
        findings = lint_file(str(target))
        baseline_path = tmp_path / "baseline.json"
        self._baseline_with_dead_entry(baseline_path, findings)
        stream = io.StringIO()
        run_lint(
            [str(target)],
            baseline=str(baseline_path),
            prune_baseline=True,
            stream=stream,
        )
        pruned = Baseline.load(str(baseline_path))
        assert "deadbeefdeadbeef" not in pruned.counts
        # The live fingerprints survive the prune untouched.
        assert sorted(pruned.counts) == sorted(
            {f.fingerprint for f in findings}
        )
        report = collect([str(target)], str(baseline_path))
        assert report.findings == []
        assert report.stale_baseline == []

    def test_stale_entries_appear_in_json_report(self, tmp_path):
        target = BAD / "repro" / "serving" / "guarded_state.py"
        findings = lint_file(str(target))
        baseline_path = tmp_path / "baseline.json"
        self._baseline_with_dead_entry(baseline_path, findings)
        out = tmp_path / "report.json"
        stream = io.StringIO()
        run_lint(
            [str(target)],
            baseline=str(baseline_path),
            out=str(out),
            stream=stream,
        )
        report = json.loads(out.read_text())
        assert len(report["stale_baseline"]) == 1
        assert report["stale_baseline"][0]["dead"] == 1


class TestThreadingModelDocs:
    """docs/serving.md's threading-model table tracks the analyzer."""

    def _doc_edges(self):
        text = (REPO / "docs" / "serving.md").read_text()
        marker = "<!-- lockwatch:static-edges -->"
        assert marker in text, (
            "docs/serving.md lost its static lock-order edge list"
        )
        section = text.split(marker, 1)[1]
        section = section.split("<!-- /lockwatch -->", 1)[0]
        edges = re.findall(
            r"`([A-Za-z_.]+)`\s*->\s*`([A-Za-z_.]+)`", section
        )
        return sorted(set(edges))

    def test_documented_edges_match_analyzer(self):
        project = ProjectContext.from_paths([str(SRC)])
        assert self._doc_edges() == project.lock_order_edges()

    def test_documented_locks_match_inventory(self):
        text = (REPO / "docs" / "serving.md").read_text()
        marker = "<!-- lockwatch:threading-model -->"
        assert marker in text
        section = text.split(marker, 1)[1]
        section = section.split("<!-- /lockwatch -->", 1)[0]
        documented = set(
            re.findall(r"`([A-Za-z]+\.[A-Za-z_]+)`", section)
        )
        project = ProjectContext.from_paths([str(SRC)])
        serving_locks = {
            name
            for name in project.lock_kinds
            if name.split(".")[0]
            in {
                "RequestQueue",
                "InferenceServer",
                "ServerFleet",
                "MetricsRegistry",
                "Tracer",
            }
        }
        assert serving_locks <= documented
