"""Cross-cutting property-based tests (hypothesis).

These exercise invariants that span modules, complementing the
per-module property tests: Morton locality, sampler/searcher
consistency under transformation, metric axioms, and the cost model's
monotonicity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EdgePCConfig,
    MortonNeighborSearch,
    MortonSampler,
    structurize,
)
from repro.core import morton
from repro.neighbors import false_neighbor_ratio, knn, recall
from repro.nn.recorder import STAGE_NEIGHBOR, STAGE_SAMPLE, StageEvent
from repro.runtime import CostModel, xavier
from repro.sampling import coverage_radius


def _cloud(seed: int, n: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, 3))


class TestMortonLocalityProperties:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_adjacent_codes_are_adjacent_cells(self, seed):
        """Two cells that differ by one along one axis have codes whose
        XOR touches only that axis's bit positions."""
        gen = np.random.default_rng(seed)
        cell = gen.integers(0, (1 << 21) - 2, size=3)
        code = morton.encode_scalar(*cell)
        bumped = morton.encode_scalar(cell[0] + 1, cell[1], cell[2])
        diff = code ^ bumped
        # Only x-axis bit positions (0, 3, 6, ...) may differ.
        assert diff & 0b110110110110110110110110110110 == 0 or True
        x_mask = 0x1249249249249249
        assert diff & ~x_mask == 0

    @given(seed=st.integers(0, 2**16), n=st.integers(16, 200))
    @settings(max_examples=20, deadline=None)
    def test_translation_invariance_of_order(self, seed, n):
        """Translating a cloud does not change its Morton order (the
        grid anchors at the cloud minimum)."""
        pts = _cloud(seed, n)
        shifted = pts + np.array([100.0, -50.0, 3.0])
        a = structurize(pts).permutation
        b = structurize(shifted).permutation
        assert np.array_equal(a, b)

    @given(seed=st.integers(0, 2**16), n=st.integers(16, 200))
    @settings(max_examples=20, deadline=None)
    def test_uniform_scale_invariance_of_order(self, seed, n):
        pts = _cloud(seed, n)
        a = structurize(pts).permutation
        b = structurize(pts * 7.5).permutation
        assert np.array_equal(a, b)


class TestSamplerProperties:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_sampling_is_translation_equivariant(self, seed):
        pts = _cloud(seed, 128)
        a = MortonSampler().sample(pts, 32).indices
        b = MortonSampler().sample(pts + 42.0, 32).indices
        assert np.array_equal(a, b)

    @given(seed=st.integers(0, 2**16), frac=st.sampled_from([2, 4, 8]))
    @settings(max_examples=15, deadline=None)
    def test_more_samples_never_worse_coverage(self, seed, frac):
        pts = _cloud(seed, 256)
        few = MortonSampler().sample(pts, 256 // (2 * frac)).indices
        many = MortonSampler().sample(pts, 256 // frac).indices
        # Stride sampling at 2x density includes every coarse sample's
        # stride block, so coverage cannot regress much; allow slack
        # for stride phase effects.
        assert coverage_radius(pts, many) <= coverage_radius(
            pts, few
        ) * 1.25


class TestSearchProperties:
    @given(
        seed=st.integers(0, 2**16),
        k=st.integers(2, 8),
        mult=st.sampled_from([2, 4]),
    )
    @settings(max_examples=15, deadline=None)
    def test_fnr_plus_recall_consistency(self, seed, k, mult):
        """For equal-cardinality neighbor sets, FNR = 1 - recall."""
        pts = _cloud(seed, 128)
        order = structurize(pts)
        approx = MortonNeighborSearch(k, mult * k).search(
            pts, order=order
        )
        exact = knn(pts, pts, k)
        # Rows may contain duplicate padding in neither searcher here,
        # so both are true k-sets.
        fnr = false_neighbor_ratio(approx, exact)
        rec = recall(approx, exact)
        assert fnr == pytest.approx(1.0 - rec, abs=1e-9)

    @given(seed=st.integers(0, 2**16), k=st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_window_growth_never_hurts_geometry(self, seed, k):
        """A wider window only ever brings neighbors closer (mean
        neighbor distance is non-increasing in W)."""
        pts = _cloud(seed, 128)
        order = structurize(pts)

        def mean_distance(window):
            nbrs = MortonNeighborSearch(k, window).search(
                pts, order=order
            )
            return np.linalg.norm(
                pts[nbrs] - pts[:, None, :], axis=2
            ).mean()

        assert mean_distance(4 * k) <= mean_distance(k) + 1e-12


class TestCostModelProperties:
    @given(
        n=st.integers(64, 100000),
        batch=st.integers(1, 64),
    )
    @settings(max_examples=30, deadline=None)
    def test_prices_positive_and_batch_linear(self, n, batch):
        cost = CostModel(xavier())
        for op, counts in (
            ("fps", {"n_points": n, "n_samples": max(1, n // 8)}),
            ("ball_query",
             {"n_queries": n // 2, "n_candidates": n, "k": 16}),
            ("morton_gen", {"n_points": n}),
            ("morton_sort", {"n_points": n}),
            ("morton_window",
             {"n_queries": n // 2, "window": 32, "k": 16}),
        ):
            stage = (
                STAGE_SAMPLE
                if op in ("fps", "morton_gen", "morton_sort")
                else STAGE_NEIGHBOR
            )
            one = cost.price(StageEvent(stage, op, 0, dict(counts)))
            many = cost.price(
                StageEvent(
                    stage, op, 0, {**counts, "batch": batch}
                )
            )
            assert one > 0
            assert many == pytest.approx(batch * one)

    @given(n1=st.integers(6000, 50000), factor=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_morton_advantage_never_collapses(self, n1, factor):
        """Above the sort latency floor, the Morton pipeline's price
        advantage over FPS is large and does not collapse as the cloud
        grows (FPS's per-pick overhead keeps it expensive even before
        its quadratic term dominates)."""
        cost = CostModel(xavier())
        n2 = n1 * factor

        def fps_price(n):
            return cost.price(
                StageEvent(
                    STAGE_SAMPLE, "fps", 0,
                    {"n_points": n, "n_samples": n // 8},
                )
            )

        def morton_price(n):
            return cost.price(
                StageEvent(
                    STAGE_SAMPLE, "morton_gen", 0, {"n_points": n}
                )
            ) + cost.price(
                StageEvent(
                    STAGE_SAMPLE, "morton_sort", 0, {"n_points": n}
                )
            )

        ratio_small = fps_price(n1) / morton_price(n1)
        ratio_large = fps_price(n2) / morton_price(n2)
        assert ratio_small > 5.0
        assert ratio_large > 0.8 * ratio_small


class TestConfigProperties:
    @given(
        bits=st.sampled_from([12, 24, 32, 48, 63]),
        mult=st.integers(1, 16),
        reuse=st.integers(0, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_config_construction_total(self, bits, mult, reuse):
        """Any parameter combination in the documented ranges builds a
        valid, internally-consistent config."""
        config = EdgePCConfig(
            code_bits=bits,
            window_multiplier=mult,
            reuse_distance=reuse,
        )
        assert config.window_for(8) == 8 * mult
        assert config.morton_memory_bytes(1000) == 1000 * bits / 8
        schedule = config.reuse_policy().schedule(6)
        assert schedule[0] == "compute"
        if reuse == 0:
            assert set(schedule) == {"compute"}


class TestAutogradFuzzing:
    """Random expression trees: autograd vs numerical gradients."""

    @given(
        seed=st.integers(0, 2**16),
        depth=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_expression_gradients(self, seed, depth):
        from repro.nn.autograd import Tensor

        gen = np.random.default_rng(seed)
        x0 = gen.uniform(0.5, 1.5, size=(3, 4))
        consts = [gen.uniform(0.5, 1.5, size=(3, 4)) for _ in range(depth)]
        ops = gen.integers(0, 6, size=depth)

        def build(t):
            out = t
            for op, c in zip(ops, consts):
                k = Tensor(c)
                if op == 0:
                    out = out + k
                elif op == 1:
                    out = out * k
                elif op == 2:
                    out = (out * out + 0.5) ** 0.5
                elif op == 3:
                    out = out.tanh() + k
                elif op == 4:
                    out = (out + k).sigmoid() * 2.0
                else:
                    out = (out.exp() + 1.0).log()
            return (out * out).mean()

        t = Tensor(x0.copy(), requires_grad=True)
        build(t).backward()

        eps = 1e-6
        flat = x0.reshape(-1)
        grad_flat = t.grad.reshape(-1)
        # Spot-check a few coordinates numerically.
        for i in np.random.default_rng(seed + 1).choice(
            flat.size, 3, replace=False
        ):
            orig = flat[i]
            flat[i] = orig + eps
            hi = build(Tensor(x0)).item()
            flat[i] = orig - eps
            lo = build(Tensor(x0)).item()
            flat[i] = orig
            numeric = (hi - lo) / (2 * eps)
            assert abs(numeric - grad_flat[i]) < 1e-4, (
                f"op sequence {ops}: {numeric} vs {grad_flat[i]}"
            )
