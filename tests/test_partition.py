"""Tests for million-point scene partitioning (PR 10).

Covers the Morton-chunked scatter plan (cores partition the scene,
uniform chunk sizes, voxel-dilation halo coverage), stitch identity
(single-chunk byte-identity against the direct pipeline; multi-chunk
bit-exact equality against a monolithic run for an order-independent
local model once the halo covers its receptive field — property-tested
across chunk boundaries, duplicated points, and adversarial halo
widths), the partition cost projection, the deterministic bench suite
and its ratio gate, and the fleet scatter/gather path: one stitched
trace per scene with zero orphan spans, chunk failures failing the
scene, and admission refusals surfacing mid-scatter.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import (
    compare_with_baseline,
    format_results,
    run_partition_suite,
)
from repro.core import EdgePCConfig
from repro.datasets import SceneSegmentation, make_scene
from repro.nn import PointNet2Segmentation, SAConfig
from repro.observability import Tracer, find_orphans
from repro.observability.clock import FixedClock
from repro.observability.metrics import MetricsRegistry
from repro.partition import (
    PartitionedPipeline,
    PartitionRejectedError,
    ScenePartitioner,
    halo_width_for,
    price_partition,
)
from repro.pipeline import EdgePCPipeline
from repro.serving import (
    FleetConfig,
    NoHealthyReplicaError,
    RetryExhaustedError,
    RetryPolicy,
    ServerFleet,
    ServingConfig,
)


def _scene_model(halo_width=0.12, num_classes=5, seed=0):
    """A small two-level model whose receptive field is exactly
    ``halo_width`` (the SA radii sum to it)."""
    from dataclasses import replace

    config = replace(
        EdgePCConfig.paper_default(), exact_fast_threshold=1024
    )
    return PointNet2Segmentation(
        num_classes=num_classes,
        sa_configs=(
            SAConfig(0.25, 4, halo_width / 3, (8, 8)),
            SAConfig(0.25, 4, 2 * halo_width / 3, (8, 8)),
        ),
        edgepc=config,
        head_hidden=8,
        rng=np.random.default_rng(seed),
    )


def _scene_pipeline(halo_width=0.12, seed=0, metrics=None):
    return EdgePCPipeline(
        _scene_model(halo_width=halo_width, seed=seed),
        metrics=metrics,
    )


class _NeighborStatsPipeline:
    """Order-independent stand-in pipeline for stitch-identity proofs.

    Per point, the "logits" are purely local neighborhood statistics
    within ``radius``: the inclusive neighbor count and the
    coordinate-wise max and min over those neighbors.  Max/min/count
    are exactly order- and subset-independent, so the monolithic
    answer for a point depends only on the scene within ``radius`` of
    it — the receptive-field model the halo contract is stated for.
    """

    tracer = None
    metrics = None

    def __init__(self, radius):
        self.radius = float(radius)
        self.calls = 0

    def infer(self, batch):
        self.calls += 1
        batch = np.asarray(batch, dtype=np.float64)
        outputs = []
        for cloud in batch:
            delta = cloud[:, None, :] - cloud[None, :, :]
            near = (delta * delta).sum(-1) <= self.radius**2
            count = near.sum(axis=1).astype(np.float64)
            stats = []
            for axis in range(3):
                coord = np.broadcast_to(
                    cloud[None, :, axis], near.shape
                )
                stats.append(
                    np.where(near, coord, -np.inf).max(axis=1)
                )
                stats.append(
                    np.where(near, coord, np.inf).min(axis=1)
                )
            outputs.append(np.stack([count] + stats, axis=-1))
        logits = np.stack(outputs)

        class _Result:
            pass

        result = _Result()
        result.logits = logits
        result.predictions = logits.argmax(axis=-1)
        result.breakdown = None
        result.energy = None
        result.degraded_stages = ()
        return result


class TestHaloWidthFor:
    def test_sums_sa_radii(self):
        model = _scene_model(halo_width=0.3)
        assert halo_width_for(model.sa_configs) == pytest.approx(0.3)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            halo_width_for(())
        with pytest.raises(ValueError):
            halo_width_for((SAConfig(0.25, 4, 0.0, (8,)),))

    def test_for_model_requires_sa_configs(self):
        partitioner = ScenePartitioner.for_model(
            _scene_model(halo_width=0.3)
        )
        assert partitioner.halo_width == pytest.approx(0.3)
        with pytest.raises(ValueError):
            ScenePartitioner.for_model(object())


class TestPartitionPlan:
    def test_cores_partition_the_scene(self, rng):
        points = rng.random((500, 3)) * 4.0
        plan = ScenePartitioner(64, halo_width=0.3).plan(points)
        plan.validate_cover()
        assert plan.num_chunks == 8
        owners = np.full(500, -1)
        for chunk in plan.chunks:
            assert np.all(owners[chunk.core_indices] == -1)
            owners[chunk.core_indices] = chunk.index
        assert np.all(owners >= 0)

    def test_uniform_chunk_size_with_core_first_layout(self, rng):
        points = rng.random((400, 3)) * 4.0
        plan = ScenePartitioner(64, halo_width=0.3).plan(points)
        for chunk in plan.chunks:
            assert chunk.size == plan.chunk_size
            assert chunk.indices.shape == (plan.chunk_size,)
            assert np.array_equal(
                chunk.indices[: chunk.num_core], chunk.core_indices
            )
            # Core and context never overlap.
            assert not np.intersect1d(
                chunk.core_indices, chunk.halo_indices
            ).size

    def test_halo_covers_the_receptive_field(self, rng):
        """Every point within halo_width of a core point is in the
        chunk — the guarantee the stitch-identity claim rests on."""
        points = rng.random((300, 3)) * 3.0
        halo_width = 0.4
        plan = ScenePartitioner(48, halo_width=halo_width).plan(
            points
        )
        for chunk in plan.chunks:
            member = np.zeros(300, dtype=bool)
            member[chunk.indices] = True
            core = points[chunk.core_indices]
            delta = points[:, None, :] - core[None, :, :]
            near = (
                (delta * delta).sum(-1).min(axis=1)
                <= halo_width**2
            )
            assert member[near].all()

    def test_small_scene_is_one_chunk_in_original_order(self, rng):
        points = rng.random((100, 3))
        plan = ScenePartitioner(128, halo_width=0.5).plan(points)
        assert plan.num_chunks == 1
        chunk = plan.chunks[0]
        assert np.array_equal(
            chunk.core_indices, np.arange(100)
        )
        assert chunk.num_halo == 0
        assert plan.chunk_size == 100

    def test_zero_halo_width_yields_no_halo(self, rng):
        points = rng.random((200, 3)) * 3.0
        plan = ScenePartitioner(64, halo_width=0.0).plan(points)
        # Only uniform-size padding remains (array_split imbalance).
        assert plan.halo_points_total <= plan.num_chunks
        plan.validate_cover()

    def test_plan_is_deterministic(self, rng):
        points = rng.random((300, 3)) * 3.0
        partitioner = ScenePartitioner(48, halo_width=0.3)
        plan_a = partitioner.plan(points)
        plan_b = partitioner.plan(points)
        for left, right in zip(plan_a.chunks, plan_b.chunks):
            assert np.array_equal(
                left.core_indices, right.core_indices
            )
            assert np.array_equal(
                left.halo_indices, right.halo_indices
            )

    def test_input_validation(self, rng):
        partitioner = ScenePartitioner(64, halo_width=0.1)
        with pytest.raises(ValueError):
            partitioner.plan(np.empty((0, 3)))
        with pytest.raises(ValueError):
            partitioner.plan(rng.random((10, 2)))
        bad = rng.random((10, 3))
        bad[3, 1] = np.nan
        with pytest.raises(ValueError):
            partitioner.plan(bad)
        with pytest.raises(ValueError):
            ScenePartitioner(0)
        with pytest.raises(ValueError):
            ScenePartitioner(64, halo_width=-0.1)
        with pytest.raises(ValueError):
            ScenePartitioner(64, halo_width=float("inf"))

    def test_halo_grid_guard_rejects_vanishing_width(self, rng):
        points = rng.random((70, 3)) * 1e9
        with pytest.raises(ValueError, match="halo grid"):
            ScenePartitioner(32, halo_width=1e-9).plan(points)

    def test_halo_ratio_accounts_context_rows(self, rng):
        points = rng.random((300, 3)) * 3.0
        plan = ScenePartitioner(48, halo_width=0.3).plan(points)
        total_context = sum(c.num_halo for c in plan.chunks)
        assert plan.halo_points_total == total_context
        assert plan.halo_ratio == pytest.approx(
            total_context / 300
        )


class TestStitchIdentity:
    def test_single_chunk_is_byte_identical_to_direct(self, rng):
        pipeline = _scene_pipeline()
        partitioned = PartitionedPipeline(
            pipeline,
            partitioner=ScenePartitioner(512, halo_width=0.12),
        )
        xyz = make_scene(256, seed=3).xyz
        chunked = partitioned.infer(xyz)
        direct = pipeline.infer(xyz[np.newaxis])
        assert np.array_equal(chunked.logits, direct.logits[0])
        assert np.array_equal(
            chunked.predictions, direct.predictions[0]
        )
        assert chunked.plan.num_chunks == 1

    def test_multi_chunk_matches_monolithic_local_model(self, rng):
        radius = 0.35
        fake = _NeighborStatsPipeline(radius)
        partitioned = PartitionedPipeline(
            fake,
            partitioner=ScenePartitioner(48, halo_width=radius),
            max_chunks_per_batch=3,
        )
        points = rng.random((300, 3)) * 3.0
        chunked = partitioned.infer(points)
        monolithic = fake.infer(points[np.newaxis]).logits[0]
        assert chunked.plan.num_chunks > 1
        assert np.array_equal(chunked.logits, monolithic)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(60, 160),
        chunk_points=st.integers(16, 48),
        radius=st.floats(0.05, 0.6),
        duplicates=st.integers(0, 20),
        scale=st.floats(0.5, 4.0),
    )
    def test_stitch_identity_property(
        self, seed, n, chunk_points, radius, duplicates, scale
    ):
        """Halo >= receptive field => chunked output of the local
        model is bit-exact against the monolithic run, across chunk
        boundaries, duplicated points, and clustered geometry."""
        gen = np.random.default_rng(seed)
        points = gen.random((n, 3)) * scale
        if duplicates:
            picks = gen.integers(0, n, size=duplicates)
            points = np.concatenate([points, points[picks]])
        fake = _NeighborStatsPipeline(radius)
        partitioned = PartitionedPipeline(
            fake,
            partitioner=ScenePartitioner(
                chunk_points, halo_width=radius
            ),
        )
        chunked = partitioned.infer(points)
        monolithic = fake.infer(points[np.newaxis]).logits[0]
        assert np.array_equal(chunked.logits, monolithic)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        halo_factor=st.floats(1.0, 3.0),
    )
    def test_oversized_halo_changes_nothing(
        self, seed, halo_factor
    ):
        """Any halo at or above the receptive field gives the same
        stitched answer — extra context rows are discarded."""
        radius = 0.3
        gen = np.random.default_rng(seed)
        points = gen.random((120, 3)) * 2.0
        fake = _NeighborStatsPipeline(radius)
        partitioned = PartitionedPipeline(
            fake,
            partitioner=ScenePartitioner(
                32, halo_width=radius * halo_factor
            ),
        )
        chunked = partitioned.infer(points)
        monolithic = fake.infer(points[np.newaxis]).logits[0]
        assert np.array_equal(chunked.logits, monolithic)

    def test_undersized_halo_diverges_on_boundaries(self, rng):
        """Sanity check that the identity above is not vacuous: a
        halo far below the receptive field breaks equality."""
        radius = 0.8
        points = rng.random((240, 3)) * 2.0
        fake = _NeighborStatsPipeline(radius)
        partitioned = PartitionedPipeline(
            fake,
            partitioner=ScenePartitioner(32, halo_width=0.01),
        )
        chunked = partitioned.infer(points)
        monolithic = fake.infer(points[np.newaxis]).logits[0]
        assert not np.array_equal(chunked.logits, monolithic)


class TestPartitionedPipeline:
    def test_real_model_multi_chunk_end_to_end(self):
        metrics = MetricsRegistry()
        pipeline = _scene_pipeline(metrics=metrics)
        partitioned = PartitionedPipeline(
            pipeline,
            partitioner=ScenePartitioner(256, halo_width=0.12),
            max_chunks_per_batch=2,
            metrics=metrics,
        )
        scene = make_scene(900, seed=1)
        result = partitioned.infer(scene.xyz)
        assert result.plan.num_chunks == 4
        assert result.logits.shape == (900, 5)
        assert result.predictions.shape == (900,)
        assert 0 <= result.predictions.min()
        assert result.predictions.max() < 5
        assert result.simulated_s > 0
        assert result.energy_j > 0
        names = {
            m["name"] for m in metrics.snapshot()["metrics"]
        }
        assert "partition_scenes_total" in names
        assert "partition_chunks_total" in names
        assert "partition_halo_points_ratio" in names
        assert "partition_chunk_size_points" in names

    def test_default_partitioner_uses_model_receptive_field(self):
        pipeline = _scene_pipeline(halo_width=0.3)
        partitioned = PartitionedPipeline(pipeline)
        assert partitioned.partitioner.halo_width == pytest.approx(
            0.3
        )

    def test_rejected_batch_raises_typed_error(self, rng):
        class _Rejecting:
            tracer = None
            metrics = None

            def infer(self, batch):
                class _Result:
                    rejected = True
                    rejection_reason = "validation: nan rows"

                return _Result()

        partitioned = PartitionedPipeline(
            _Rejecting(),
            partitioner=ScenePartitioner(32, halo_width=0.1),
        )
        with pytest.raises(PartitionRejectedError) as err:
            partitioned.infer(rng.random((100, 3)))
        assert err.value.chunk_indices == (0, 1, 2, 3)
        assert "nan rows" in str(err.value)

    def test_scene_shape_validation(self, rng):
        partitioned = PartitionedPipeline(
            _NeighborStatsPipeline(0.2),
            partitioner=ScenePartitioner(32, halo_width=0.2),
        )
        with pytest.raises(ValueError):
            partitioned.infer(rng.random((4, 10, 3)))
        with pytest.raises(ValueError):
            PartitionedPipeline(
                _NeighborStatsPipeline(0.2),
                partitioner=ScenePartitioner(32),
                max_chunks_per_batch=0,
            )


class TestPartitionCost:
    def test_price_partition_shape_and_consistency(self):
        pipeline = _scene_pipeline()
        partitioner = ScenePartitioner(256, halo_width=0.12)
        xyz = make_scene(900, seed=2).xyz
        plan = partitioner.plan(xyz)
        report = price_partition(pipeline, xyz, plan)
        assert report.scene_points == 900
        assert report.num_chunks == plan.num_chunks
        assert report.per_chunk_s > 0
        assert report.chunked_s == pytest.approx(
            report.per_chunk_s * plan.num_chunks
        )
        assert report.monolithic_s > 0
        assert report.speedup == pytest.approx(
            report.monolithic_s / report.chunked_s
        )
        assert 0 <= report.halo_overhead_s < report.chunked_s

    def test_pricing_is_deterministic(self):
        xyz = make_scene(700, seed=5).xyz
        partitioner = ScenePartitioner(256, halo_width=0.12)
        plan = partitioner.plan(xyz)
        first = price_partition(_scene_pipeline(), xyz, plan)
        second = price_partition(_scene_pipeline(), xyz, plan)
        assert first == second


class TestPartitionBench:
    def _suite(self):
        return run_partition_suite(
            sizes=(700,), chunk_points=256, halo_width=0.12, seed=0
        )

    def test_suite_structure_and_determinism(self):
        results = self._suite()
        assert results["params"]["chunk_points"] == 256
        entry = results["kernels"]["scene/700"]
        for key in (
            "chunked_s",
            "monolithic_s",
            "speedup",
            "per_chunk_s",
            "num_chunks",
            "chunk_size",
            "halo_ratio",
        ):
            assert key in entry
        assert json.dumps(results, sort_keys=True) == json.dumps(
            self._suite(), sort_keys=True
        )

    def test_suite_validates_params(self):
        with pytest.raises(ValueError):
            run_partition_suite(sizes=(100,), chunk_points=256)
        with pytest.raises(ValueError):
            run_partition_suite(sizes=(700,), chunk_points=16)
        with pytest.raises(ValueError):
            run_partition_suite(
                sizes=(700,), chunk_points=256, halo_width=0.0
            )

    def test_gate_passes_against_itself_and_catches_regression(
        self,
    ):
        current = {"partition": self._suite()}
        assert (
            compare_with_baseline(current, current, tolerance=0.0)
            == []
        )
        regressed = json.loads(json.dumps(current))
        regressed["partition"]["kernels"]["scene/700"][
            "speedup"
        ] *= 0.4
        problems = compare_with_baseline(
            regressed, current, tolerance=0.1
        )
        assert len(problems) == 1
        assert "scene/700" in problems[0]

    def test_gate_skips_sizes_the_run_did_not_request(self):
        baseline = {"partition": self._suite()}
        other = json.loads(json.dumps(baseline))
        other["partition"]["kernels"]["scene/9999"] = dict(
            other["partition"]["kernels"]["scene/700"]
        )
        assert (
            compare_with_baseline(baseline, other, tolerance=0.0)
            == []
        )

    def test_format_results_renders_partition_section(self):
        text = format_results({"partition": self._suite()})
        assert "scene/700" in text
        assert "halo" in text

    def test_committed_baseline_gate_is_green(self):
        """The repo's committed BENCH_partition.json must stay
        reproducible: regenerate the matching sizes and gate."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / (
            "BENCH_partition.json"
        )
        baseline = json.loads(path.read_text())
        assert "partition" in baseline
        params = baseline["partition"]["params"]
        sizes = tuple(params["sizes"])
        current = {
            "partition": run_partition_suite(
                sizes=sizes[:1],
                chunk_points=params["chunk_points"],
                halo_width=params["halo_width"],
                seed=params["seed"],
            )
        }
        assert compare_with_baseline(current, baseline) == []


def _scene_fleet(replicas=2, tracer=None, metrics=None, config=None):
    clock = FixedClock(0.0)
    if tracer is None:
        tracer = Tracer(clock=clock)
    fleet = ServerFleet(
        [_scene_pipeline(seed=0) for _ in range(replicas)],
        config=config or FleetConfig(),
        serving_config=ServingConfig(
            max_batch_size=2, max_wait_ms=5.0, workers=1,
            max_queue_depth=64,
        ),
        clock=clock,
        tracer=tracer,
        metrics=metrics,
    )
    return fleet, clock, tracer


def _drive_scene(fleet, clock, scene, step_s=0.01, max_steps=800):
    for _ in range(max_steps):
        if scene.future.done():
            return
        clock.advance(step_s)
        now = clock()
        for index in range(len(fleet.replicas)):
            fleet.pump_replica(index)
        fleet.service(now)
    raise AssertionError("scene did not resolve in virtual time")


class TestFleetScatterGather:
    def test_scene_stitches_to_the_direct_result(self):
        fleet, clock, tracer = _scene_fleet()
        partitioner = ScenePartitioner(256, halo_width=0.12)
        xyz = make_scene(900, seed=4).xyz
        scene = fleet.submit_scene(
            xyz, partitioner, tenant="scene-1"
        )
        assert scene.num_chunks == 4
        _drive_scene(fleet, clock, scene)
        served = scene.future.result()
        direct = PartitionedPipeline(
            _scene_pipeline(seed=0), partitioner=partitioner
        ).infer(xyz)
        assert np.array_equal(served.logits, direct.logits)
        assert np.array_equal(
            served.prediction, direct.predictions
        )
        assert served.trigger == "scatter_gather"
        assert served.batch_size == 4
        assert served.request_id == scene.request_id
        assert fleet.completed == 4  # the chunk sub-requests

    def test_one_stitched_trace_per_scene_no_orphans(self):
        fleet, clock, tracer = _scene_fleet()
        partitioner = ScenePartitioner(256, halo_width=0.12)
        xyz = make_scene(900, seed=4).xyz
        scene = fleet.submit_scene(xyz, partitioner, tenant="t")
        _drive_scene(fleet, clock, scene)
        scene.future.result()
        records = [s.to_dict() for s in tracer.finished()]
        assert find_orphans(records) == []
        trace_id = scene.ctx.trace_id
        spans = [
            r for r in records if r.get("trace_id") == trace_id
        ]
        roots = [
            r
            for r in spans
            if r["name"] == "request" and r.get("parent") is None
        ]
        assert len(roots) == 1
        root = roots[0]
        assert root["attrs"]["scatter_gather"] is True
        assert root["attrs"]["outcome"] == "ok"
        assert root["attrs"]["chunks"] == scene.num_chunks
        chunk_spans = [
            r for r in spans if r["name"] == "request.chunk"
        ]
        assert len(chunk_spans) == scene.num_chunks
        for span in chunk_spans:
            assert span["parent"] == root["id"]
        names = {r["name"] for r in spans}
        assert "request.attempt" in names
        assert "request.batch" in names

    def test_scene_results_are_deterministic_across_runs(self):
        outputs = []
        for _ in range(2):
            fleet, clock, _ = _scene_fleet()
            partitioner = ScenePartitioner(256, halo_width=0.12)
            xyz = make_scene(900, seed=4).xyz
            scene = fleet.submit_scene(xyz, partitioner)
            _drive_scene(fleet, clock, scene)
            outputs.append(scene.future.result().logits)
        assert np.array_equal(outputs[0], outputs[1])

    def test_chunk_failure_fails_the_scene(self):
        fleet, clock, tracer = _scene_fleet(
            config=FleetConfig(
                retry=RetryPolicy(max_attempts=2)
            )
        )
        for index in range(len(fleet.replicas)):
            fleet.error_replica(index)
        partitioner = ScenePartitioner(256, halo_width=0.12)
        xyz = make_scene(900, seed=4).xyz
        scene = fleet.submit_scene(xyz, partitioner, tenant="t")
        _drive_scene(fleet, clock, scene)
        with pytest.raises(RetryExhaustedError):
            scene.future.result()
        records = [s.to_dict() for s in tracer.finished()]
        assert find_orphans(records) == []
        roots = [
            r
            for r in records
            if r["name"] == "request"
            and r.get("trace_id") == scene.ctx.trace_id
        ]
        assert len(roots) == 1
        assert roots[0]["attrs"]["outcome"] == "failed"

    def test_admission_refusal_fails_the_scene_at_the_door(self):
        fleet, clock, tracer = _scene_fleet()
        for index in range(len(fleet.replicas)):
            fleet.kill_replica(index)
        partitioner = ScenePartitioner(256, halo_width=0.12)
        xyz = make_scene(900, seed=4).xyz
        scene = fleet.submit_scene(xyz, partitioner)
        assert scene.future.done()
        with pytest.raises(NoHealthyReplicaError):
            scene.future.result()
        assert scene.submit_error is not None

    def test_scene_metrics_are_recorded(self):
        metrics = MetricsRegistry()
        fleet, clock, _ = _scene_fleet(metrics=metrics)
        partitioner = ScenePartitioner(256, halo_width=0.12)
        xyz = make_scene(900, seed=4).xyz
        scene = fleet.submit_scene(xyz, partitioner)
        _drive_scene(fleet, clock, scene)
        scene.future.result()
        names = {
            m["name"] for m in metrics.snapshot()["metrics"]
        }
        assert "serving_fleet_scenes_total" in names
        assert "serving_fleet_scene_chunks_total" in names
        assert "serving_fleet_scene_completed_total" in names

    def test_scene_shape_validation(self, rng):
        fleet, clock, _ = _scene_fleet()
        with pytest.raises(ValueError):
            fleet.submit_scene(
                rng.random((2, 10, 3)),
                ScenePartitioner(256, halo_width=0.12),
            )


class TestSceneDataset:
    def test_make_scene_shapes_and_determinism(self):
        scene = make_scene(1000, seed=7)
        again = make_scene(1000, seed=7)
        assert scene.xyz.shape == (1000, 3)
        assert scene.labels.shape == (1000,)
        assert scene.xyz.dtype == np.float64
        assert np.array_equal(scene.xyz, again.xyz)
        assert np.array_equal(scene.labels, again.labels)
        assert not np.array_equal(
            scene.xyz, make_scene(1000, seed=8).xyz
        )

    def test_scene_prefix_stability_across_sizes(self):
        """Growing a scene appends rooms; the shared prefix of the
        same seed at a larger size is unchanged."""
        small = make_scene(500, seed=3, room_points=256)
        large = make_scene(900, seed=3, room_points=256)
        assert np.array_equal(small.xyz, large.xyz[:500])

    def test_make_scene_validation(self):
        with pytest.raises(ValueError):
            make_scene(0)
        with pytest.raises(ValueError):
            make_scene(100, room_points=8)
        with pytest.raises(ValueError):
            make_scene(100, noise_sigma=-1.0)

    def test_dataset_boundary(self):
        dataset = SceneSegmentation(
            num_clouds=2, points_per_cloud=600, room_points=256
        )
        first = dataset[0]
        assert first.xyz.shape == (600, 3)
        assert first.labels.min() >= 0
        assert first.labels.max() < (
            SceneSegmentation.num_semantic_classes
        )
        assert not np.array_equal(first.xyz, dataset[1].xyz)
        assert np.array_equal(dataset[0].xyz, first.xyz)
