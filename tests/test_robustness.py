"""Robustness / failure-injection tests.

Degenerate, extreme, and adversarial inputs through the full pipeline:
every component must either produce a valid result or fail loudly with
``ValueError`` — never crash, hang, or return garbage silently.
"""

import numpy as np
import pytest

from repro.core import (
    EdgePCConfig,
    MortonNeighborSearch,
    MortonSampler,
    MortonUpsampler,
    structurize,
)
from repro.neighbors import ball_query, knn
from repro.nn import DGCNNClassifier, PointNet2Segmentation, SAConfig
from repro.sampling import farthest_point_sample


def _degenerate_clouds(rng):
    """Name -> pathological (N, 3) cloud."""
    return {
        "all_identical": np.ones((64, 3)),
        "collinear": np.stack(
            [np.linspace(0, 1, 64), np.zeros(64), np.zeros(64)],
            axis=1,
        ),
        "coplanar": np.concatenate(
            [rng.random((64, 2)), np.zeros((64, 1))], axis=1
        ),
        "two_distant_clusters": np.concatenate(
            [
                rng.normal(0, 0.01, (32, 3)),
                rng.normal(0, 0.01, (32, 3)) + 1e6,
            ]
        ),
        "huge_coordinates": rng.random((64, 3)) * 1e12,
        "tiny_extent": rng.random((64, 3)) * 1e-12,
        "negative_octant": -rng.random((64, 3)) - 5.0,
        "heavy_duplicates": np.repeat(rng.random((8, 3)), 8, axis=0),
    }


class TestStructurizeRobustness:
    @pytest.mark.parametrize(
        "name",
        [
            "all_identical", "collinear", "coplanar",
            "two_distant_clusters", "huge_coordinates",
            "tiny_extent", "negative_octant", "heavy_duplicates",
        ],
    )
    def test_valid_permutation_on_degenerate_input(self, name, rng):
        cloud = _degenerate_clouds(rng)[name]
        order = structurize(cloud)
        assert sorted(order.permutation.tolist()) == list(
            range(len(cloud))
        )
        assert (np.diff(order.sorted_codes) >= 0).all()

    def test_single_point(self):
        order = structurize(np.array([[1.0, 2.0, 3.0]]))
        assert len(order) == 1

    def test_rejects_nan(self):
        cloud = np.zeros((4, 3))
        cloud[2, 1] = np.nan
        with pytest.raises(ValueError):
            structurize(cloud)

    def test_rejects_inf(self):
        cloud = np.zeros((4, 3))
        cloud[0, 0] = np.inf
        with pytest.raises(ValueError):
            structurize(cloud)

    def test_hilbert_rejects_nan(self):
        from repro.core.hilbert import hilbert_structurize

        cloud = np.zeros((4, 3))
        cloud[1, 2] = np.nan
        with pytest.raises(ValueError):
            hilbert_structurize(cloud)


class TestSamplerRobustness:
    @pytest.mark.parametrize(
        "name", ["all_identical", "heavy_duplicates", "tiny_extent"]
    )
    def test_sampler_on_degenerate_input(self, name, rng):
        cloud = _degenerate_clouds(rng)[name]
        result = MortonSampler().sample(cloud, 16)
        assert len(set(result.indices.tolist())) == 16

    def test_fps_on_identical_points(self):
        cloud = np.ones((32, 3))
        idx = farthest_point_sample(cloud, 8, start_index=0)
        assert len(set(idx.tolist())) == 8  # distinct despite ties

    def test_upsampler_on_identical_points(self, rng):
        cloud = np.ones((64, 3))
        result = MortonSampler().sample(cloud, 8)
        feats = rng.normal(size=(8, 4))
        out = MortonUpsampler().interpolate(cloud, result, feats)
        assert out.shape == (64, 4)
        assert np.isfinite(out).all()

    def test_sample_more_than_half(self, rng):
        cloud = rng.random((10, 3))
        result = MortonSampler().sample(cloud, 9)
        assert len(result) == 9


class TestSearchRobustness:
    @pytest.mark.parametrize(
        "name", ["all_identical", "collinear", "two_distant_clusters"]
    )
    def test_window_search_on_degenerate_input(self, name, rng):
        cloud = _degenerate_clouds(rng)[name]
        out = MortonNeighborSearch(4, 8).search(cloud)
        assert out.shape == (len(cloud), 4)
        assert out.min() >= 0 and out.max() < len(cloud)

    def test_knn_with_identical_points(self):
        cloud = np.ones((16, 3))
        out = knn(cloud, cloud, 4)
        assert out.shape == (16, 4)

    def test_ball_query_all_in_radius(self, rng):
        cloud = rng.normal(0, 0.001, (32, 3))
        out = ball_query(cloud, cloud, 10.0, 8)
        assert out.shape == (32, 8)

    def test_window_equals_cloud_size(self, rng):
        cloud = rng.random((16, 3))
        out = MortonNeighborSearch(4, 16).search(cloud)
        assert out.shape == (16, 4)


class TestModelRobustness:
    def test_pointnet2_on_degenerate_cloud(self):
        """A batch containing an all-identical cloud must not produce
        NaNs (BatchNorm sees zero variance on the relative channel)."""
        sa = (SAConfig(0.5, 4, 1.0, (8, 8)),)
        model = PointNet2Segmentation(
            num_classes=3, sa_configs=sa,
            edgepc=EdgePCConfig.paper_default(),
            head_hidden=8, rng=np.random.default_rng(0),
        )
        xyz = np.ones((1, 32, 3))
        logits = model(xyz)
        assert np.isfinite(logits.numpy()).all()

    def test_dgcnn_on_duplicate_points(self, rng):
        model = DGCNNClassifier(
            num_classes=3, k=4, ec_channels=((8,),),
            emb_channels=8, head_hidden=8,
            edgepc=EdgePCConfig.paper_default(),
            rng=np.random.default_rng(0),
        )
        base = rng.random((8, 3))
        xyz = np.repeat(base, 4, axis=0)[None]
        logits = model(xyz)
        assert np.isfinite(logits.numpy()).all()

    def test_model_rejects_nan_input_or_stays_finite(self, rng):
        """NaN inputs must not silently propagate to finite-looking
        logits: either the model raises, or the NaN is visible."""
        model = DGCNNClassifier(
            num_classes=3, k=4, ec_channels=((8,),),
            emb_channels=8, head_hidden=8,
            rng=np.random.default_rng(0),
        )
        xyz = rng.random((1, 16, 3))
        xyz[0, 3, 1] = np.nan
        try:
            logits = model(xyz)
        except (ValueError, FloatingPointError):
            return
        assert not np.isfinite(logits.numpy()).all()

    def test_training_survives_extreme_scale(self, rng):
        """Gradients stay finite on clouds at 1e3 scale."""
        from repro.nn import Adam, cross_entropy

        model = DGCNNClassifier(
            num_classes=2, k=4, ec_channels=((8,),),
            emb_channels=8, head_hidden=8,
            rng=np.random.default_rng(0),
        )
        opt = Adam(model.parameters(), lr=1e-3)
        xyz = rng.random((2, 16, 3)) * 1e3
        loss = cross_entropy(model(xyz), np.array([0, 1]))
        loss.backward()
        opt.step()
        assert all(
            np.isfinite(p.data).all() for p in model.parameters()
        )


class TestConfigMisuseRobustness:
    def test_optimizing_nonexistent_layers_is_harmless(self, rng):
        """Config naming layers the model doesn't have simply leaves
        every real layer exact."""
        sa = (SAConfig(0.5, 4, 1.0, (8, 8)),)
        config = EdgePCConfig(
            sample_layers={7}, upsample_layers={9},
            neighbor_layers={5},
        )
        model = PointNet2Segmentation(
            num_classes=3, sa_configs=sa, edgepc=config,
            head_hidden=8, rng=np.random.default_rng(0),
        )
        from repro.nn import StageRecorder

        recorder = StageRecorder()
        model(rng.random((1, 32, 3)), recorder=recorder)
        assert "fps" in recorder.op_names()
        assert "morton_sort" not in recorder.op_names()

    def test_window_larger_than_every_layer(self, rng):
        """A giant window multiplier degrades to exact search instead
        of erroring (the window clamps to N per layer)."""
        sa = (SAConfig(0.5, 4, 1.0, (8, 8)),)
        config = EdgePCConfig(
            sample_layers={0}, upsample_layers=frozenset(),
            neighbor_layers={0}, window_multiplier=10_000,
        )
        model = PointNet2Segmentation(
            num_classes=3, sa_configs=sa, edgepc=config,
            head_hidden=8, rng=np.random.default_rng(0),
        )
        logits = model(rng.random((1, 32, 3)))
        assert np.isfinite(logits.numpy()).all()
