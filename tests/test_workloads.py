"""Tests for the Table-1 workload specs and trace synthesis
(repro.workloads), including the trace-vs-real-forward cross-check."""

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.nn import (
    DGCNNClassifier,
    PointNet2Segmentation,
    SAConfig,
    StageRecorder,
)
from repro.workloads import (
    DGCNNArch,
    PointNet2Arch,
    WorkloadSpec,
    standard_workloads,
    trace,
)


class TestSpecs:
    def test_table1_rows(self):
        specs = standard_workloads()
        assert set(specs) == {"W1", "W2", "W3", "W4", "W5", "W6"}
        assert specs["W1"].points_per_batch == 8192
        assert specs["W3"].points_per_batch == 1024
        assert specs["W4"].points_per_batch == 2048
        assert specs["W5"].points_per_batch == 4096
        assert specs["W6"].points_per_batch == 8192

    def test_table1_models_and_tasks(self):
        specs = standard_workloads()
        assert specs["W1"].model == "pointnet2"
        assert specs["W2"].dataset == "ScanNet"
        assert specs["W3"].task == "classification"
        assert specs["W4"].task == "part_segmentation"
        assert specs["W6"].task == "semantic_segmentation"

    def test_w1_batch_fixed_32(self):
        assert standard_workloads()["W1"].batch_size == 32

    def test_w2_batch_is_scan_mean(self):
        """W2's batch size varies 4-41 with mean 14 (Sec. 6.2)."""
        assert standard_workloads()["W2"].batch_size == 14

    def test_arch_validation(self):
        with pytest.raises(ValueError):
            PointNet2Arch(
                num_points=100,
                sa_points=(200,),  # cannot grow
                k=8,
                sa_mlps=((8,),),
                fp_mlps=((8,),),
                head=(8, 2),
            )
        with pytest.raises(ValueError):
            DGCNNArch(
                num_points=100, k=8, ec_mlps=(), emb_channels=8,
                head=(8, 2),
            )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                "bad", "transformer", "X", "t", 10, 1, 2, None
            )


class TestTraceSynthesis:
    def test_baseline_pointnet2_ops(self):
        spec = standard_workloads()["W1"]
        rec = trace(spec, EdgePCConfig.baseline())
        ops = rec.op_names()
        assert "fps" in ops
        assert "ball_query" in ops
        assert "interp_exact" in ops
        assert "morton_sort" not in ops

    def test_edgepc_pointnet2_ops(self):
        spec = standard_workloads()["W1"]
        rec = trace(spec, EdgePCConfig.paper_default())
        ops = rec.op_names()
        assert "morton_gen" in ops
        assert "morton_window" in ops
        assert "interp_morton" in ops
        # Non-optimized layers keep the exact kernels.
        assert "fps" in ops
        assert "ball_query" in ops

    def test_pointnet2_layer_counts(self):
        spec = standard_workloads()["W2"]
        rec = trace(spec, EdgePCConfig.baseline())
        fps_events = [e for e in rec if e.op == "fps"]
        assert len(fps_events) == 4
        interp = [e for e in rec if e.op == "interp_exact"]
        assert len(interp) == 4

    def test_dgcnn_reuse_schedule(self):
        spec = standard_workloads()["W3"]
        rec = trace(spec, EdgePCConfig.paper_default())
        neighbor_ops = [
            e.op for e in rec if e.stage == "neighbor_search"
        ]
        # Modules: EC1 morton, EC2 reuse, EC3 knn, EC4 reuse
        # ("skipped for the second and fourth EC modules", Sec. 6.2).
        assert neighbor_ops == [
            "morton_gen", "morton_sort", "morton_window",
            "reuse", "knn", "reuse",
        ]

    def test_dgcnn_baseline_all_knn(self):
        spec = standard_workloads()["W4"]
        rec = trace(spec, EdgePCConfig.baseline())
        neighbor_ops = [
            e.op for e in rec if e.stage == "neighbor_search"
        ]
        assert neighbor_ops == ["knn"] * 4

    def test_dgcnn_feature_space_dims(self):
        spec = standard_workloads()["W3"]
        rec = trace(spec, EdgePCConfig.baseline())
        dims = [
            e.counts["dim"]
            for e in rec
            if e.op == "knn"
        ]
        assert dims[0] == 3
        assert all(d > 3 for d in dims[1:])

    def test_batch_recorded(self):
        spec = standard_workloads()["W1"]
        rec = trace(spec, EdgePCConfig.baseline())
        for event in rec:
            if event.op != "matmul":
                assert event.counts["batch"] == 32

    def test_classification_head_single_row_per_cloud(self):
        spec = standard_workloads()["W3"]
        rec = trace(spec, EdgePCConfig.baseline())
        matmuls = [e for e in rec if e.op == "matmul"]
        head = matmuls[-1]
        assert head.counts["rows"] == spec.batch_size


class TestTraceMatchesRealForward:
    """The synthesized traces must agree op-for-op with a real forward
    pass of the same architecture (small scale)."""

    def test_pointnet2_op_sequence(self, rng):
        config = EdgePCConfig.paper_default()
        # Real model: 4 tiny SA levels with the trace generator's
        # point ratios.
        sa = tuple(
            SAConfig(0.5, 4, 2.0, (8, 8)) for _ in range(4)
        )
        model = PointNet2Segmentation(
            num_classes=3, sa_configs=sa, edgepc=config,
            head_hidden=8, rng=np.random.default_rng(0),
        )
        rec_real = StageRecorder()
        model(rng.normal(size=(2, 64, 3)), recorder=rec_real)

        arch = PointNet2Arch(
            num_points=64,
            sa_points=(32, 16, 8, 4),
            k=4,
            sa_mlps=((8, 8),) * 4,
            fp_mlps=((8, 8),) * 4,
            head=(8, 3),
        )
        spec = WorkloadSpec(
            "toy", "pointnet2", "toy", "semantic_segmentation",
            64, 2, 3, arch,
        )
        rec_synth = trace(spec, config)
        real_ops = [
            (e.stage, e.op)
            for e in rec_real
            if e.op != "matmul" and e.op != "gather"
        ]
        synth_ops = [
            (e.stage, e.op)
            for e in rec_synth
            if e.op != "matmul" and e.op != "gather"
        ]
        assert real_ops == synth_ops

    def test_dgcnn_op_sequence(self, rng):
        config = EdgePCConfig.paper_default()
        model = DGCNNClassifier(
            num_classes=4, k=4,
            ec_channels=((8,), (8,), (8,), (8,)),
            emb_channels=8, head_hidden=8,
            edgepc=config, rng=np.random.default_rng(0),
        )
        rec_real = StageRecorder()
        model(rng.normal(size=(2, 32, 3)), recorder=rec_real)

        arch = DGCNNArch(
            num_points=32, k=4,
            ec_mlps=((8,), (8,), (8,), (8,)),
            emb_channels=8, head=(4,),
        )
        spec = WorkloadSpec(
            "toy", "dgcnn", "toy", "classification", 32, 2, 4, arch,
        )
        rec_synth = trace(spec, config)
        real_ns = [
            e.op for e in rec_real if e.stage == "neighbor_search"
        ]
        synth_ns = [
            e.op for e in rec_synth if e.stage == "neighbor_search"
        ]
        assert real_ns == synth_ns


class TestScanBatchSizes:
    def test_mean_and_range(self):
        import numpy as np

        from repro.workloads import scan_batch_sizes

        sizes = scan_batch_sizes(
            5000, np.random.default_rng(0)
        )
        assert sizes.min() >= 4
        assert sizes.max() <= 41
        assert abs(sizes.mean() - 14.0) < 1.0  # paper's mean batch

    def test_deterministic_default(self):
        from repro.workloads import scan_batch_sizes

        a = scan_batch_sizes(20)
        b = scan_batch_sizes(20)
        assert (a == b).all()

    def test_rejects_bad_args(self):
        import pytest as _pytest

        from repro.workloads import scan_batch_sizes

        with _pytest.raises(ValueError):
            scan_batch_sizes(0)
        with _pytest.raises(ValueError):
            scan_batch_sizes(5, mean=100.0)


class TestTraceWithBatch:
    def test_overrides_batch(self):
        from repro.core import EdgePCConfig
        from repro.workloads import (
            standard_workloads,
            trace_with_batch,
        )

        spec = standard_workloads()["W2"]
        rec = trace_with_batch(spec, EdgePCConfig.baseline(), 7)
        fps = [e for e in rec if e.op == "fps"]
        assert fps[0].counts["batch"] == 7

    def test_per_frame_latency_scales(self):
        from repro.core import EdgePCConfig
        from repro.runtime import PipelineProfiler
        from repro.workloads import (
            standard_workloads,
            trace_with_batch,
        )

        spec = standard_workloads()["W2"]
        config = EdgePCConfig.baseline()
        profiler = PipelineProfiler()
        small = profiler.breakdown(
            trace_with_batch(spec, config, 4), config
        ).total_s
        large = profiler.breakdown(
            trace_with_batch(spec, config, 41), config
        ).total_s
        assert large > 8 * small

    def test_rejects_bad_batch(self):
        import pytest as _pytest

        from repro.core import EdgePCConfig
        from repro.workloads import (
            standard_workloads,
            trace_with_batch,
        )

        with _pytest.raises(ValueError):
            trace_with_batch(
                standard_workloads()["W2"],
                EdgePCConfig.baseline(),
                0,
            )
