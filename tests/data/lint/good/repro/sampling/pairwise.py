"""Chunk-bounded pairwise kernels: silent under PERF-105."""

import numpy as np

_CHUNK = 4096


def nearest_sample_distance(points, sampled):
    out = np.empty(points.shape[0], dtype=np.float64)
    for lo in range(0, points.shape[0], _CHUNK):
        block = points[lo : lo + _CHUNK]
        d = np.linalg.norm(block[:, None] - sampled[None, :], axis=2)
        out[lo : lo + _CHUNK] = d.min(axis=1)
    return out


def pairwise_d2_rows(points, sampled, out):
    s_sq = np.sum(sampled**2, axis=1)[None, :]
    for lo in range(0, points.shape[0], _CHUNK):
        block = points[lo : lo + _CHUNK]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ sampled.T
            + s_sq
        )
        out[lo : lo + _CHUNK] = np.maximum(d2, 0.0)
    return out
