"""Known-good partition metric-name fixture: partition_ prefix
everywhere, histograms with unit suffixes."""


def record(registry, chunks, ratio):
    registry.counter("partition_chunks_total").inc(chunks)
    registry.gauge("partition_chunk_size").set(chunks)
    registry.histogram("partition_halo_points_ratio").observe(ratio)
