"""Known-good fixture for CONC-501: every write to the shared
counter happens under the same mutex."""

import threading


class ShardTally:
    """Per-shard completion tally behind a dedicated mutex."""

    def __init__(self) -> None:
        self._state_lock = threading.Lock()
        self.finished = 0

    def mark_finished(self) -> None:
        with self._state_lock:
            self.finished += 1

    def reset_between_runs(self) -> None:
        with self._state_lock:
            self.finished = 0
