"""Known-good serving metric-name fixture: serving_ prefix everywhere,
histograms with unit suffixes (including the batch-size _clouds unit).
"""


def record(registry, size):
    registry.counter("serving_admitted_total").inc()
    registry.gauge("serving_queue_depth").set(0)
    registry.histogram("serving_batch_size_clouds").observe(size)
    registry.histogram("serving_queue_wait_seconds").observe(0.0)
