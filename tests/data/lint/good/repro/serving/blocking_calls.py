"""Known-good fixture for CONC-505: the blocking queue read and the
pacing sleep both happen outside the mutex, which only guards the
shared list mutation."""

import threading
import time


class PacedDrain:
    """Drains a source queue at a fixed pace into a local list."""

    def __init__(self, source_queue) -> None:
        self.drain_lock = threading.Lock()
        self.source_queue = source_queue
        self.drained = []

    def drain_one(self) -> None:
        item = self.source_queue.get(timeout=0.5)
        time.sleep(0.01)
        with self.drain_lock:
            self.drained.append(item)
