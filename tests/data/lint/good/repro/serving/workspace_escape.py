"""Known-good fixture for CONC-504: the freshly minted Workspace is
claimed before it leaves the function, so any foreign-thread access
raises WorkspaceOwnershipError instead of corrupting scratch."""

from repro.core.workspace import Workspace


class ScratchPool:
    """Hands out per-request scratch buffers."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def lease(self, n_points: int):
        scratch = Workspace(n_points)
        scratch.claim_owner("lease")
        return scratch
