"""Known-good trace-context fixture: retry events carry trace_id and
future resolutions happen next to the trace context, so OBS-303 stays
silent (as does every other rule)."""


def record_retry(timeline, request, replica, now):
    timeline.append(
        RetryEvent(  # noqa: F821
            t_s=now,
            request_id=request.request_id,
            replica=replica,
            kind="retry",
            trace_id=request.ctx.trace_id if request.ctx else "",
        )
    )


def complete(request, result, tracer, now):
    emit_request_trace(  # noqa: F821
        tracer, request, now, "ok"
    )
    request.future.set_result(result)


def fail(request, error, registry, tracer, now):
    registry.counter("serving_fleet_failed_total").inc()
    emit_request_trace(  # noqa: F821
        tracer, request, now, "failed", detail=str(error)
    )
    request.future.set_exception(error)
