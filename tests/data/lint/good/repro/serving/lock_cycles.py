"""Known-good fixture for CONC-502: both paths take the two locks in
the same order, and the helper runs after its caller releases."""

import threading


class IngestSide:
    def __init__(self) -> None:
        self.ingest_lock = threading.Lock()


class FlushSide:
    def __init__(self) -> None:
        self.flush_lock = threading.Lock()


class CrossCoupler:
    """Couples the two sides with one global lock order."""

    def __init__(self) -> None:
        self.ingest = IngestSide()
        self.flush = FlushSide()

    def forward(self) -> None:
        with self.ingest.ingest_lock:
            with self.flush.flush_lock:
                pass

    def backward(self) -> None:
        with self.ingest.ingest_lock:
            with self.flush.flush_lock:
                pass


class DoubleTaker:
    """Acquires its mutex once per call, never nested."""

    def __init__(self) -> None:
        self.serial_lock = threading.Lock()

    def outer(self) -> None:
        with self.serial_lock:
            pass
        self._restack()

    def _restack(self) -> None:
        with self.serial_lock:
            pass
