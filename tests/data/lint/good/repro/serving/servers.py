"""Known-good serving fixture: spans on the entry points, delegation
covering the rest; helper classes without a serving suffix stay out of
scope."""


class TracedServer:
    def __init__(self, pipeline, tracer):
        self.pipeline = pipeline
        self.tracer = tracer

    def submit(self, cloud):
        with self.tracer.span("serving.submit", "serving"):
            return self.pipeline(cloud)

    def stop(self):
        with self.tracer.span("serving.stop", "serving"):
            self.pipeline = None

    @property
    def depth(self):
        return 0


class TracedGenerator:
    def __init__(self, tracer):
        self.tracer = tracer

    def run(self, server):
        with self.tracer.span("loadgen.run", "serving"):
            return [server.submit(i) for i in range(4)]


class ReportWriter:
    """No serving suffix: OBS-301 does not apply."""

    def save(self, path):
        return path
