"""Known-good fixture for CONC-503: the wait sits inside a predicate
re-check loop, so wakeups are re-validated before proceeding."""

import threading


class HandoffSlot:
    """Single-value rendezvous between a producer and a consumer."""

    def __init__(self) -> None:
        self.slot_ready = threading.Condition()
        self.payload = None

    def put(self, value) -> None:
        with self.slot_ready:
            self.payload = value
            self.slot_ready.notify_all()

    def take(self):
        with self.slot_ready:
            while self.payload is None:
                self.slot_ready.wait(0.1)
            return self.payload
