"""Known-good serving retry-loop fixture: sleeps derive from the
jittered backoff policy and stop at the request deadline, so
ROBUST-403 stays silent (as does every other rule)."""

import time


def submit_with_retries(server, cloud, policy, deadline_s, clock):
    attempt = 1
    while True:
        try:
            return server.submit(cloud)
        except RuntimeError:
            remaining_s = deadline_s - clock()
            backoff_s = policy.next_backoff(
                attempt, token="retry", remaining_s=remaining_s
            )
            if backoff_s is None:
                raise
            time.sleep(backoff_s)
            attempt += 1


def wait_for_drain(queue, timeout_s):
    # Condition waits are the sanctioned pause: a notify wakes the
    # waiter early, so there is no fixed retry cadence to jitter.
    with queue.condition:
        while queue.depth > 0:
            queue.condition.wait(timeout=timeout_s)
