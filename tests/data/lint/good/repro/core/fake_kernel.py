"""Known-good kernel fixture: vectorized, silent under every rule."""

import numpy as np

_AXES = (0, 1, 2)


def pairwise_d2(points):
    diff = points[:, None, :] - points[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


def per_axis_minmax(points):
    out = np.empty((2, 3), dtype=np.float64)
    for axis in _AXES:
        out[0, axis] = points[:, axis].min()
        out[1, axis] = points[:, axis].max()
    return out
