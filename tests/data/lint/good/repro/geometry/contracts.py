"""Known-good contract fixture: shape and dtype documented."""

import numpy as np


def unit_normals(vectors: np.ndarray) -> np.ndarray:
    """Normalize each row; returns an ``(N, 3)`` float64 array."""
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / norms
