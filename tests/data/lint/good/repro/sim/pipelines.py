"""Known-good pipeline fixture: spans on the entry point, delegation
covering the rest."""


class TracedPipeline:
    def __init__(self, model, tracer):
        self.model = model
        self.tracer = tracer

    def infer(self, batch):
        with self.tracer.span("pipeline.infer", "pipeline"):
            return self.model(batch)

    def warmup(self, batch):
        return self.infer(batch)

    @property
    def name(self):
        return "traced"
