"""Known-good metric-name fixture: docs/observability.md convention."""


def record(registry, latency_s):
    registry.counter("batches_total").inc()
    registry.histogram("stage_latency_seconds").observe(latency_s)
    registry.gauge("queue_depth").set(0)
