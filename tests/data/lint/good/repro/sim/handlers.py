"""Known-good exception fixture: narrow catches and observable
failures."""


def load_calibration(path):
    try:
        with open(path) as fh:
            return fh.read()
    except OSError:
        return None


def shutdown(conn, metrics):
    try:
        conn.close()
    except Exception:
        metrics.counter("shutdown_failures_total").inc()
