"""Known-good randomness fixture: seeded generators only."""

from typing import Optional

import numpy as np


def jitter(points, rng: Optional[np.random.Generator] = None):
    rng = rng or np.random.default_rng(0)
    return points + rng.random(points.shape)
