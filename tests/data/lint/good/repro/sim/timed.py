"""Known-good wall-clock fixture: time injected through the shim."""

from repro.observability.clock import wall_clock


def stamp(report, clock=wall_clock):
    report["created_unix"] = clock()
    return report
