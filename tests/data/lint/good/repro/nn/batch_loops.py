"""Known-good batch fixture: batched dispatch, silent under every rule."""

import numpy as np


def neighbors_batched(searcher, xyz):
    return searcher.search_batch(xyz)


def centroids_batched(xyz):
    return xyz.mean(axis=1)


def chunked_rows(d2, chunk):
    out = np.empty(d2.shape[0], dtype=np.float64)
    # 3-arg range() chunk strides are the sanctioned tiling shape.
    for lo in range(0, d2.shape[0], chunk):
        out[lo : lo + chunk] = d2[lo : lo + chunk].min(axis=1)
    return out
