"""Known-bad batch-loop fixture: PERF-104 must fire twice."""

import numpy as np


def neighbors_per_cloud(searcher, xyz):
    batch = xyz.shape[0]
    out = np.empty((batch, xyz.shape[1], 8), dtype=np.int64)
    for b in range(batch):
        out[b] = searcher.search(xyz[b])
    return out


def centroids_per_cloud(xyz):
    out = np.empty((xyz.shape[0], 3), dtype=np.float64)
    for b in range(xyz.shape[0]):
        out[b] = xyz[b].mean(axis=0)
    return out
