"""Known-bad kernel fixture: PERF-101/102/103 must all fire."""

import numpy as np


def pairwise_d2(points):
    out = []
    for i in range(len(points)):
        row = []
        for j in range(len(points)):
            row.append(float(np.sum((points[i] - points[j]) ** 2)))
        out.append(row)
    return np.asarray(out)
