"""Known-bad wall-clock fixture: DET-202 must fire twice."""

import time
from datetime import datetime


def stamp(report):
    report["created_unix"] = time.time()
    report["created_iso"] = datetime.now().isoformat()
    return report
