"""Known-bad exception fixture: ROBUST-401 must fire twice."""


def load_calibration(path):
    try:
        with open(path) as fh:
            return fh.read()
    except Exception:
        return None


def shutdown(conn):
    try:
        conn.close()
    except:  # intentionally bare for the fixture
        pass
