"""Known-bad metric-name fixture: OBS-302 must fire four times."""


def record(registry, latency_s):
    registry.counter("batchCount").inc()
    registry.counter("frames_seen").inc()
    registry.histogram("stage_latency").observe(latency_s)
