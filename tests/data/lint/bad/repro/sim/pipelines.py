"""Known-bad pipeline fixture: OBS-301 must fire twice."""


class SilentPipeline:
    def __init__(self, model):
        self.model = model

    def infer(self, batch):
        return self.model(batch)

    def warmup(self, batch):
        return self.infer(batch)
