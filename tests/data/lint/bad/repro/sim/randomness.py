"""Known-bad randomness fixture: DET-201 must fire three times."""

import random

import numpy as np


def jitter(points):
    np.random.seed(0)
    noise = np.random.rand(*points.shape)
    return points + noise * random.random()
