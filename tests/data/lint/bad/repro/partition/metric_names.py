"""Known-bad partition metric-name fixture: OBS-302 must fire three
times (missing partition_ prefix twice, missing histogram unit once)."""


def record(registry, chunks, ratio):
    registry.counter("scene_chunks_total").inc(chunks)
    registry.gauge("chunk_size").set(chunks)
    registry.histogram("partition_halo").observe(ratio)
