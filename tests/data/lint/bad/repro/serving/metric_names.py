"""Known-bad serving metric-name fixture: OBS-302 must fire three
times (missing serving_ prefix twice, missing histogram unit once)."""


def record(registry, size):
    registry.counter("queue_admitted_total").inc()
    registry.gauge("worker_count").set(2)
    registry.histogram("serving_batch_size").observe(size)
