"""Known-bad fixture for CONC-504: a Workspace minted in serving code
without an ownership claim, free to leak across worker threads."""

from repro.core.workspace import Workspace


class ScratchPool:
    """Hands out per-request scratch buffers."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def lease(self, n_points: int):
        # CONC-504: unowned scratch escapes to the caller's thread.
        scratch = Workspace(n_points)
        return scratch
