"""Known-bad fixture for CONC-501: a shared counter written both
under its mutex and bare, so one path races the other."""

import threading


class ShardTally:
    """Per-shard completion tally behind a dedicated mutex."""

    def __init__(self) -> None:
        self._state_lock = threading.Lock()
        self.finished = 0

    def mark_finished(self) -> None:
        with self._state_lock:
            self.finished += 1

    def reset_between_runs(self) -> None:
        # CONC-501: every other write holds _state_lock.
        self.finished = 0
