"""Known-bad fixture for CONC-503: a Condition.wait() guarded by a
single if — a spurious wakeup or stolen notify returns stale state."""

import threading


class HandoffSlot:
    """Single-value rendezvous between a producer and a consumer."""

    def __init__(self) -> None:
        self.slot_ready = threading.Condition()
        self.payload = None

    def put(self, value) -> None:
        with self.slot_ready:
            self.payload = value
            self.slot_ready.notify_all()

    def take(self):
        with self.slot_ready:
            if self.payload is None:
                # CONC-503: needs 'while self.payload is None:'.
                self.slot_ready.wait(0.1)
            return self.payload
