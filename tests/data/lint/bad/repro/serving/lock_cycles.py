"""Known-bad fixture for CONC-502: a two-lock acquisition cycle
(forward takes ingest then flush, backward takes flush then ingest)
plus a plain Lock re-acquired through a helper on the same thread."""

import threading


class IngestSide:
    def __init__(self) -> None:
        self.ingest_lock = threading.Lock()


class FlushSide:
    def __init__(self) -> None:
        self.flush_lock = threading.Lock()


class CrossCoupler:
    """Couples the two sides with inconsistent lock ordering."""

    def __init__(self) -> None:
        self.ingest = IngestSide()
        self.flush = FlushSide()

    def forward(self) -> None:
        with self.ingest.ingest_lock:
            with self.flush.flush_lock:
                pass

    def backward(self) -> None:
        # CONC-502: reverse of forward()'s order — deadlock window.
        with self.flush.flush_lock:
            with self.ingest.ingest_lock:
                pass


class DoubleTaker:
    """Re-enters its own non-reentrant mutex through a helper."""

    def __init__(self) -> None:
        self.serial_lock = threading.Lock()

    def outer(self) -> None:
        with self.serial_lock:
            self._restack()

    def _restack(self) -> None:
        # CONC-502: a plain Lock deadlocks against its own thread.
        with self.serial_lock:
            pass
