"""Known-bad serving retry-loop fixture: ROBUST-403 must fire three
times (fixed-interval sleep, deadline-blind backoff, and a loop with
neither)."""

import time


def poll_until_ready(server, deadline_s, clock):
    # Fixed cadence: honors the deadline but retries in lockstep.
    while clock() < deadline_s:
        if server.ready():
            return True
        time.sleep(0.05)
    return False


def retry_forever(server, cloud, policy):
    # Jittered backoff, but nothing bounds the total retry time.
    attempt = 1
    while True:
        try:
            return server.submit(cloud)
        except RuntimeError:
            backoff_s = policy.backoff_s(attempt, token="retry")
            time.sleep(backoff_s)
            attempt += 1


def hammer(server, cloud):
    # Worst case: fixed interval and no deadline at all.
    for _ in range(100):
        try:
            return server.submit(cloud)
        except RuntimeError:
            time.sleep(0.01)
    return None
