"""Known-bad serving fixture: OBS-301 must fire three times (the
serving-layer class suffixes Server/Batcher/Queue/Generator are held
to the instrumentation contract inside ``repro.serving``)."""


class SilentServer:
    def __init__(self, pipeline):
        self.pipeline = pipeline

    def submit(self, cloud):
        return self.pipeline(cloud)

    def stop(self):
        self.pipeline = None


class SilentGenerator:
    def run(self, server):
        return [server.submit(i) for i in range(4)]
