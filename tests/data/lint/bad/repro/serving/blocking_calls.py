"""Known-bad fixture for CONC-505: a queue read and a sleep both run
while holding the drain mutex, stalling every contending thread."""

import threading
import time


class PacedDrain:
    """Drains a source queue at a fixed pace into a local list."""

    def __init__(self, source_queue) -> None:
        self.drain_lock = threading.Lock()
        self.source_queue = source_queue
        self.drained = []

    def drain_one(self) -> None:
        with self.drain_lock:
            # CONC-505 (x2): both calls block under drain_lock.
            item = self.source_queue.get(timeout=0.5)
            time.sleep(0.01)
            self.drained.append(item)
