"""Known-bad trace-context fixture: OBS-303 must fire three times
(a RetryEvent built without trace_id=, and two functions that resolve
a request future without ever touching the trace context)."""


def record_retry(timeline, request_id, replica, now):
    # Terminal retry bookkeeping with no trace_id: the retry timeline
    # cannot be stitched back to the request's end-to-end trace.
    timeline.append(
        RetryEvent(  # noqa: F821
            t_s=now,
            request_id=request_id,
            replica=replica,
            kind="retry",
        )
    )


def complete(request, result):
    # Resolves the future straight past the tracer: the request
    # reaches its terminal state outside its trace.
    request.future.set_result(result)


def fail(request, error, registry):
    registry.counter("serving_fleet_failed_total").inc()
    request.future.set_exception(error)
