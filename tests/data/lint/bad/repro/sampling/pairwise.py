"""Known-bad pairwise kernels: PERF-105 must fire (twice)."""

import numpy as np


def nearest_sample_distance(points, sampled):
    d = np.linalg.norm(points[:, None] - sampled[None, :], axis=2)
    return d.min(axis=1)


def pairwise_d2(points, sampled):
    d2 = (
        np.sum(points**2, axis=1)[:, None]
        - 2.0 * points @ sampled.T
        + np.sum(sampled**2, axis=1)[None, :]
    )
    return np.maximum(d2, 0.0)
