"""Known-bad contract fixture: ROBUST-402 must fire once."""

import numpy as np


def unit_normals(vectors: np.ndarray) -> np.ndarray:
    """Normalize each row vector."""
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / norms
