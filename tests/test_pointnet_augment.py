"""Tests for the original PointNet models (repro.nn.pointnet) and the
augmentation pipeline (repro.datasets.augment)."""

import numpy as np
import pytest

from repro.datasets import (
    AugmentedDataset,
    Compose,
    ModelNetLike,
    make_batches,
    standard_augmentation,
)
from repro.nn import (
    Adam,
    PointNetClassifier,
    PointNetSegmentation,
    StageRecorder,
    cross_entropy,
)


class TestPointNetClassifier:
    def test_output_shape(self, rng):
        model = PointNetClassifier(
            num_classes=5, mlp_channels=(8, 16),
            rng=np.random.default_rng(0),
        )
        assert model(rng.normal(size=(3, 32, 3))).shape == (3, 5)

    def test_permutation_invariance(self, rng):
        """The defining PointNet property: point order is irrelevant."""
        model = PointNetClassifier(
            num_classes=4, mlp_channels=(8,),
            rng=np.random.default_rng(0),
        )
        model.eval()
        xyz = rng.normal(size=(1, 64, 3))
        shuffled = xyz[:, rng.permutation(64), :]
        assert np.allclose(
            model(xyz).numpy(), model(shuffled).numpy(), atol=1e-9
        )

    def test_trace_has_no_sampling_stage(self, rng):
        """PointNet has neither bottleneck stage — EdgePC's targets
        simply do not exist here."""
        model = PointNetClassifier(
            num_classes=3, mlp_channels=(8,),
            rng=np.random.default_rng(0),
        )
        recorder = StageRecorder()
        model(rng.normal(size=(1, 16, 3)), recorder=recorder)
        assert {e.stage for e in recorder} == {"feature_compute"}

    def test_trains(self, rng):
        model = PointNetClassifier(
            num_classes=2, mlp_channels=(8, 8), dropout=0.0,
            rng=np.random.default_rng(0),
        )
        opt = Adam(model.parameters(), lr=1e-2)
        xyz = rng.normal(size=(4, 32, 3))
        xyz[:2, :, 0] += 3.0
        labels = np.array([1, 1, 0, 0])
        losses = []
        for _ in range(20):
            opt.zero_grad()
            loss = cross_entropy(model(xyz), labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.7

    def test_rejects_bad_input(self, rng):
        with pytest.raises(ValueError):
            PointNetClassifier(3)(rng.normal(size=(4, 3)))


class TestPointNetSegmentation:
    def test_output_shape(self, rng):
        model = PointNetSegmentation(
            num_classes=6, mlp_channels=(8, 16),
            rng=np.random.default_rng(0),
        )
        assert model(rng.normal(size=(2, 32, 3))).shape == (2, 32, 6)

    def test_global_context_reaches_every_point(self, rng):
        """Moving one point changes the global feature and hence can
        change other points' logits (the tiled-global design)."""
        model = PointNetSegmentation(
            num_classes=3, mlp_channels=(8,),
            rng=np.random.default_rng(0),
        )
        model.eval()
        xyz = rng.normal(size=(1, 16, 3))
        moved = xyz.copy()
        moved[0, 0] += 100.0
        a = model(xyz).numpy()
        b = model(moved).numpy()
        assert not np.allclose(a[0, 1:], b[0, 1:])

    def test_gradients_flow(self, rng):
        model = PointNetSegmentation(
            num_classes=3, mlp_channels=(8,),
            rng=np.random.default_rng(0),
        )
        loss = cross_entropy(
            model(rng.normal(size=(1, 16, 3))),
            rng.integers(0, 3, (1, 16)),
        )
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())


class TestAugmentation:
    def test_compose_applies_in_order(self, rng):
        from repro.geometry.points import PointCloud

        trace = []
        pipeline = Compose(
            [
                lambda c, g: (trace.append("a"), c)[1],
                lambda c, g: (trace.append("b"), c)[1],
            ]
        )
        pipeline(PointCloud(rng.normal(size=(4, 3))), rng)
        assert trace == ["a", "b"]
        assert len(pipeline) == 2

    def test_standard_stack_preserves_shape_and_labels(self, rng):
        from repro.geometry.points import PointCloud

        cloud = PointCloud(
            rng.normal(size=(64, 3)),
            labels=rng.integers(0, 3, 64),
        )
        out = standard_augmentation()(cloud, rng)
        assert len(out) == 64
        assert out.labels is not None

    def test_augmented_dataset_changes_clouds(self):
        base = ModelNetLike(num_clouds=4, points_per_cloud=64)
        augmented = AugmentedDataset(base, standard_augmentation())
        assert not np.array_equal(augmented[0].xyz, base[0].xyz)
        assert np.array_equal(augmented[0].labels, base[0].labels)

    def test_epoch_changes_augmentation(self):
        base = ModelNetLike(num_clouds=2, points_per_cloud=64)
        augmented = AugmentedDataset(base, standard_augmentation())
        first = augmented[0].xyz.copy()
        augmented.set_epoch(1)
        assert not np.array_equal(augmented[0].xyz, first)
        augmented.set_epoch(0)
        assert np.array_equal(augmented[0].xyz, first)

    def test_batches_from_augmented_dataset(self):
        base = ModelNetLike(
            num_clouds=4, points_per_cloud=32, num_classes=2
        )
        augmented = AugmentedDataset(base, standard_augmentation())
        batches = make_batches(augmented, 2)
        assert batches[0].xyz.shape == (2, 32, 3)

    def test_set_epoch_rejects_negative(self):
        base = ModelNetLike(num_clouds=2, points_per_cloud=16)
        augmented = AugmentedDataset(base, standard_augmentation())
        with pytest.raises(ValueError):
            augmented.set_epoch(-1)
