"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.geometry import shapes


@pytest.fixture(scope="session", autouse=True)
def lockwatch_sanitizer():
    """Opt-in runtime lock-order sanitizer (``REPRO_LOCKWATCH=1``).

    When enabled, every :class:`InferenceServer` and
    :class:`ServerFleet` constructed anywhere in the suite gets its
    serving locks swapped for :class:`LockOrderWatchdog` proxies, so
    each threaded test doubles as a sanitizer run.  The session fails
    at teardown if any acquisition order contradicted the static
    CONC-502 lock-order graph (or inverted at runtime).
    """
    if os.environ.get("REPRO_LOCKWATCH") != "1":
        yield None
        return
    from repro.robustness.lockwatch import (
        LockOrderWatchdog,
        static_lock_order,
    )
    from repro.serving.fleet import ServerFleet
    from repro.serving.server import InferenceServer

    watchdog = LockOrderWatchdog(static_edges=static_lock_order())
    orig_server_init = InferenceServer.__init__
    orig_fleet_init = ServerFleet.__init__

    def server_init(self, *args, **kwargs):
        orig_server_init(self, *args, **kwargs)
        watchdog.instrument_server(self)

    def fleet_init(self, *args, **kwargs):
        orig_fleet_init(self, *args, **kwargs)
        watchdog.instrument_fleet(self)

    InferenceServer.__init__ = server_init
    ServerFleet.__init__ = fleet_init
    try:
        yield watchdog
    finally:
        InferenceServer.__init__ = orig_server_init
        ServerFleet.__init__ = orig_fleet_init
    # After restoring the constructors: fail the session loudly if
    # anything was observed out of order.
    watchdog.check()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_cloud(rng):
    """A 256-point irregular cloud (biased sphere)."""
    return shapes.sample_sphere(256, rng, density_bias=1.0)


@pytest.fixture
def medium_cloud(rng):
    """A 1024-point irregular cloud for neighbor-search tests."""
    return shapes.sample_torus(1024, rng, density_bias=0.8)


@pytest.fixture
def uniform_cloud(rng):
    """A uniform random cloud in the unit cube."""
    return rng.random((512, 3))
