"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.geometry import shapes


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_cloud(rng):
    """A 256-point irregular cloud (biased sphere)."""
    return shapes.sample_sphere(256, rng, density_bias=1.0)


@pytest.fixture
def medium_cloud(rng):
    """A 1024-point irregular cloud for neighbor-search tests."""
    return shapes.sample_torus(1024, rng, density_bias=0.8)


@pytest.fixture
def uniform_cloud(rng):
    """A uniform random cloud in the unit cube."""
    return rng.random((512, 3))
