"""End-to-end integration tests: full training runs on the synthetic
datasets, the retraining-recovers-accuracy experiment (paper Sec. 5.3 /
Fig. 14a), and the full profiling pipeline over real forwards."""

import numpy as np
import pytest

from repro.core import EdgePCConfig
from repro.datasets import (
    ModelNetLike,
    S3DISLike,
    make_batches,
    train_test_split,
)
from repro.nn import Adam, DGCNNClassifier, PointNet2Segmentation, SAConfig
from repro.runtime import PipelineProfiler, compare
from repro.nn import StageRecorder
from repro.train import Trainer, retrain_comparison


def _dgcnn_builder(seed=0):
    def build(config):
        return DGCNNClassifier(
            num_classes=4,
            k=8,
            ec_channels=((16,), (16,), (32,)),
            emb_channels=32,
            head_hidden=32,
            dropout=0.2,
            edgepc=config,
            rng=np.random.default_rng(seed),
        )

    return build


@pytest.fixture(scope="module")
def modelnet_batches():
    ds = ModelNetLike(
        num_clouds=48, points_per_cloud=128, num_classes=4, seed=0
    )
    train_idx, test_idx = train_test_split(ds, 0.25)
    return (
        make_batches(ds, 8, indices=train_idx),
        make_batches(ds, 4, indices=test_idx, drop_last=False),
    )


@pytest.fixture(scope="module")
def fig14_result(modelnet_batches):
    """The three-way Fig. 14a experiment, shared across assertions."""
    train_b, test_b = modelnet_batches
    return retrain_comparison(
        _dgcnn_builder(),
        EdgePCConfig.baseline(),
        EdgePCConfig.paper_default(),
        train_b,
        test_b,
        epochs=10,
        lr=5e-3,
    )


class TestFig14Accuracy:
    def test_baseline_learns(self, fig14_result):
        assert fig14_result.baseline_accuracy > 0.85

    def test_pretrained_weights_degrade_with_approximations(
        self, fig14_result
    ):
        """Sec. 5.3: dropping the approximations into a pretrained
        model without retraining costs real accuracy."""
        assert fig14_result.drop_without_retraining > 0.15

    def test_retraining_recovers_accuracy(self, fig14_result):
        """Fig. 14a: after retraining with the approximations in the
        loop, the accuracy drop is small (paper: within 2%; we allow
        one test-batch worth of slack at this tiny scale)."""
        assert fig14_result.drop_after_retraining <= 0.10

    def test_retraining_beats_weight_swap(self, fig14_result):
        assert (
            fig14_result.approx_retrained_accuracy
            > fig14_result.approx_pretrained_accuracy
        )


class TestPointNet2Segmentation:
    def test_segmentation_learns_floor_vs_rest(self):
        """A tiny PointNet++ learns synthetic room segmentation well
        above the majority-class baseline."""
        ds = S3DISLike(num_clouds=6, points_per_cloud=128, seed=1)
        batches = make_batches(ds, 2, per_point_labels=True)
        sa = (
            SAConfig(0.5, 8, 0.5, (16, 16)),
            SAConfig(0.5, 8, 1.0, (32, 32)),
        )
        model = PointNet2Segmentation(
            num_classes=6,
            sa_configs=sa,
            edgepc=EdgePCConfig.paper_default(),
            head_hidden=16,
            dropout=0.0,
            rng=np.random.default_rng(0),
        )
        trainer = Trainer(model, Adam(model.parameters(), lr=5e-3))
        trainer.fit(batches, epochs=12)
        result = trainer.evaluate(batches, num_classes=6)
        majority = max(
            np.bincount(
                np.concatenate([b.labels.reshape(-1) for b in batches])
            )
        ) / sum(b.labels.size for b in batches)
        assert result.accuracy > majority + 0.1
        assert result.miou > 0.1


class TestProfiledRealForward:
    def test_real_forward_speedup_direction(self, rng):
        """Pricing *real* recorded traces (not synthesized ones) shows
        the same S+N speedup direction as Fig. 13.  The cloud must be
        reasonably large: below ~512 points the sort launch latency
        makes the Morton path a net loss (by design — Sec. 6.3's
        guidance to profile before choosing layers)."""
        xyz = rng.normal(size=(2, 1024, 3))
        sa = (
            SAConfig(0.25, 8, 1.0, (8, 8)),
            SAConfig(0.25, 8, 2.0, (16, 16)),
        )
        profiler = PipelineProfiler()
        recorders = {}
        configs = {
            "baseline": EdgePCConfig.baseline(),
            "edgepc": EdgePCConfig(
                sample_layers={0},
                upsample_layers={1},
                neighbor_layers={0},
            ),
        }
        for name, config in configs.items():
            model = PointNet2Segmentation(
                num_classes=3,
                sa_configs=sa,
                edgepc=config,
                head_hidden=8,
                rng=np.random.default_rng(0),
            )
            recorder = StageRecorder()
            model(xyz, recorder=recorder)
            recorders[name] = recorder
        report = compare(
            profiler,
            recorders["baseline"], configs["baseline"],
            recorders["edgepc"], configs["edgepc"],
        )
        assert report.sample_neighbor_speedup > 1.5
        assert report.end_to_end_speedup > 1.0
        assert report.energy_saving_fraction > 0.0
