"""Large-N exact fast engines (PR 9): identity, dispatch, pricing.

The pruning FPS and grid neighbor engines promise *bit-identical*
results to the brute kernels they displace above
``EdgePCConfig.exact_fast_threshold``.  These tests pin that promise
property-style (duplicated points, integer lattices, Morton-sorted
clouds, block-width boundaries), check the dispatch wiring end to end
(models, guard breaker, metrics, cost model), and bound the grid
path's memory to a workspace-sized footprint at 40k points.
"""

import tracemalloc
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import EdgePCConfig
from repro.core.structurize import structurize
from repro.core.workspace import Workspace
from repro.neighbors.batched import (
    ball_query_batch,
    ball_query_grid_batch,
    knn_batch,
    knn_grid_batch,
)
from repro.neighbors.grid import GridQueryStats, suggest_cell_size
from repro.nn.pointnet2 import PointNet2Classifier, SAConfig
from repro.nn.recorder import StageEvent
from repro.observability.metrics import MetricsRegistry
from repro.pipeline import EdgePCPipeline
from repro.robustness.guard import GuardedPipeline, GuardThresholds
from repro.runtime.cost import EXACT_OPS, CostModel
from repro.runtime.device import xavier
from repro.sampling.fps import (
    FastFpsStats,
    farthest_point_sample,
    farthest_point_sample_fast,
    farthest_point_sample_fast_batch,
)


def _cloud(seed: int, n: int, mode: str) -> np.ndarray:
    """Adversarial clouds: ties and degeneracy on purpose."""
    rng = np.random.default_rng(seed)
    if mode == "random":
        return rng.normal(size=(n, 3))
    if mode == "duplicated":
        base = rng.normal(size=(max(2, n // 4), 3))
        return base[rng.integers(base.shape[0], size=n)]
    if mode == "lattice":
        return rng.integers(0, 8, size=(n, 3)).astype(np.float64)
    if mode == "morton_sorted":
        pts = rng.normal(size=(n, 3))
        return pts[structurize(pts).permutation]
    raise AssertionError(mode)


CLOUD_MODES = ("random", "duplicated", "lattice", "morton_sorted")


class TestFastFpsIdentity:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(17, 400),
        mode=st.sampled_from(CLOUD_MODES),
    )
    @settings(max_examples=40, deadline=None)
    def test_byte_identical_to_reference(self, seed, n, mode):
        pts = _cloud(seed, n, mode)
        num = max(1, n // 3)
        ref = farthest_point_sample(pts, num, start_index=0)
        fast = farthest_point_sample_fast(pts, num, start_index=0)
        assert fast.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("n", [15, 16, 17, 31, 32, 33, 48, 64])
    def test_block_width_boundaries(self, n):
        pts = _cloud(7, n, "duplicated")
        ref = farthest_point_sample(pts, n, start_index=0)
        fast = farthest_point_sample_fast(pts, n, start_index=0)
        assert np.array_equal(fast, ref)

    def test_batch_accumulates_stats(self, rng):
        pts = rng.normal(size=(3, 256, 3))
        stats = FastFpsStats()
        out = farthest_point_sample_fast_batch(
            pts, 64, start_index=0, stats=stats
        )
        assert out.shape == (3, 64)
        assert stats.num_points == 3 * 256
        assert stats.num_samples == 3 * 64
        assert 0 < stats.points_scanned <= stats.worst_case
        assert 0.0 < stats.scan_fraction <= 1.0


class TestGridIdentity:
    # "duplicated" Gaussian clouds are excluded here: BLAS rounds the
    # d2 expansion differently per candidate column (~1e-16 jitter on
    # exact duplicates), so the brute kernel's own tie order among
    # coincident points is unspecified.  Integer lattices keep the
    # expansion exact, so duplicates tie-break canonically by index in
    # both engines and are covered below.
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(32, 500),
        k=st.integers(1, 24),
        mode=st.sampled_from(("random", "lattice", "morton_sorted")),
    )
    @settings(max_examples=40, deadline=None)
    def test_knn_grid_matches_brute(self, seed, n, k, mode):
        pts = _cloud(seed, n, mode)[None]
        k = min(k, n)
        brute = knn_batch(pts, pts, k)
        grid = knn_grid_batch(pts, pts, k)
        assert grid.tobytes() == brute.tobytes()

    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(32, 400),
        k=st.integers(1, 12),
        radius=st.sampled_from([1.0, 2.0, 3.5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_ball_grid_matches_brute(self, seed, n, k, radius):
        # Integer lattices make distances exact, so near-tie rounding
        # cannot differ between engines; ties are everywhere instead.
        pts = _cloud(seed, n, "lattice")[None]
        rng = np.random.default_rng(seed + 1)
        queries = pts[:, rng.integers(n, size=max(1, n // 4))]
        brute = ball_query_batch(queries, pts, radius, k)
        grid = ball_query_grid_batch(queries, pts, radius, k)
        assert grid.tobytes() == brute.tobytes()

    def test_stats_accounting(self, rng):
        pts = rng.normal(size=(1, 512, 3))
        stats = GridQueryStats()
        knn_grid_batch(pts, pts, 8, stats=stats)
        assert stats.num_queries == 512
        # The grid engine's whole point: scan fewer pairs than Q * N.
        assert 0 < stats.pairs_scanned < 512 * 512
        assert stats.rounds >= 1

    def test_suggest_cell_size_degenerate(self):
        coincident = np.zeros((64, 3))
        assert suggest_cell_size(coincident, 8) == 1.0
        flat = np.zeros((64, 3))
        flat[:, 0] = np.linspace(0.0, 4.0, 64)
        assert suggest_cell_size(flat, 8) > 0.0


class TestGridMemoryBudget:
    def test_40k_knn_stays_workspace_sized(self, rng):
        # Brute would materialize 2560 x 40960 float64 tiles chunked
        # by the workspace; the grid path must also stay bounded — far
        # under the ~840 MB an unchunked (Q, N) matrix would take.
        pts = rng.normal(size=(1, 40960, 3))
        queries = pts[:, ::16]
        workspace = Workspace()
        knn_grid_batch(queries, pts, 16, workspace=workspace)  # warm
        tracemalloc.start()
        knn_grid_batch(queries, pts, 16, workspace=workspace)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 64 * 1024 * 1024


class TestConfigDispatch:
    def test_exact_engine_for(self):
        config = EdgePCConfig(exact_fast_threshold=1000)
        assert config.exact_engine_for(999) == "brute"
        assert config.exact_engine_for(1000) == "fast"
        assert config.exact_engine_for(0) == "brute"
        with pytest.raises(ValueError):
            config.exact_engine_for(-1)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            EdgePCConfig(exact_fast_threshold=0)

    def test_default_threshold_keeps_small_inputs_brute(self):
        config = EdgePCConfig.baseline()
        assert config.exact_engine_for(1024) == "brute"
        assert config.exact_engine_for(40960) == "fast"


class TestModelWiring:
    def test_fast_engines_bit_identical_logits(self, rng):
        xyz = rng.normal(size=(2, 1024, 3))
        fast_cfg = replace(
            EdgePCConfig.baseline(), exact_fast_threshold=64
        )
        sa = (SAConfig(0.25, 16, 0.2, (8, 8)),)
        fast_model = PointNet2Classifier(
            num_classes=4, sa_configs=sa, edgepc=fast_cfg
        )
        brute_model = PointNet2Classifier(
            num_classes=4, sa_configs=sa, edgepc=EdgePCConfig.baseline()
        )
        brute_model.load_state_dict(fast_model.state_dict())
        fast_res = EdgePCPipeline(fast_model).infer(xyz)
        brute_res = EdgePCPipeline(brute_model).infer(xyz)
        assert "fps_fast" in fast_res.stage_ops
        assert "ball_query_grid" in fast_res.stage_ops
        assert "fps" in brute_res.stage_ops
        assert fast_res.logits.tobytes() == brute_res.logits.tobytes()

    def test_exact_fast_metrics_emitted(self, rng):
        xyz = rng.normal(size=(1, 512, 3))
        cfg = replace(EdgePCConfig.baseline(), exact_fast_threshold=64)
        model = PointNet2Classifier(
            num_classes=4,
            sa_configs=(SAConfig(0.25, 8, 0.2, (8,)),),
            edgepc=cfg,
        )
        registry = MetricsRegistry()
        EdgePCPipeline(model, metrics=registry).infer(xyz)
        rendered = registry.to_prometheus()
        assert "exact_fast_blocks_pruned_total" in rendered
        assert 'exact_fast_scan_ratio_bucket{op="fps_fast"' in rendered
        assert (
            'exact_fast_scan_ratio_bucket{op="ball_query_grid"'
            in rendered
        )


class TestGuardRoutesThroughFastEngine:
    def test_breaker_trip_at_40k_uses_fast_exact_kernels(self, rng):
        # A 40960-point stream whose probes always trip: the guard
        # degrades sampling + neighbor search to exact kernels, and
        # those exact kernels must be the fast engines — the breaker
        # being pinned open no longer implies brute O(N^2) latency.
        xyz = rng.normal(size=(1, 40960, 3))
        model = PointNet2Classifier(
            num_classes=4,
            sa_configs=(SAConfig(0.0625, 16, 0.1, (8,)),),
            edgepc=EdgePCConfig.paper_default(),
        )
        registry = MetricsRegistry()
        pipeline = EdgePCPipeline(model, metrics=registry)
        guard = GuardedPipeline(
            pipeline,
            thresholds=GuardThresholds(
                max_density_cv=1e-9,
                max_false_neighbor_rate=1e-9,
                trip_limit=1,
            ),
        )
        first = guard.infer(xyz)
        assert not first.rejected
        assert first.degradations
        ops = first.result.stage_ops
        assert "fps_fast" in ops and "fps" not in ops
        assert "ball_query_grid" in ops and "ball_query" not in ops
        second = guard.infer(xyz)
        assert not second.rejected
        assert "fps_fast" in second.result.stage_ops
        assert "open" in guard.breaker_states.values()
        rendered = registry.to_prometheus()
        assert "exact_fast_blocks_pruned_total" in rendered
        assert "exact_fast_scan_ratio" in rendered


class TestCostModelPricing:
    def _model(self):
        return CostModel(xavier())

    def test_new_ops_are_exact_family(self):
        assert {"fps_fast", "knn_grid", "ball_query_grid"} <= EXACT_OPS

    def test_fps_fast_cheaper_when_pruned(self):
        model = self._model()
        brute = StageEvent(
            "sample", "fps", 0,
            {"n_points": 40960, "n_samples": 2560, "batch": 1},
        )
        pruned = StageEvent(
            "sample", "fps_fast", 0,
            {
                "n_points": 40960,
                "n_samples": 2560,
                "batch": 1,
                # ~3% of the worst case, as measured at 40k.
                "points_scanned": 0.03 * 40960 * 2560,
            },
        )
        assert model.price(pruned) < model.price(brute)

    def test_grid_query_scales_with_pairs_scanned(self):
        model = self._model()

        def event(pairs):
            return StageEvent(
                "neighbor_search", "knn_grid", 0,
                {
                    "n_queries": 2560,
                    "n_candidates": 40960,
                    "k": 16,
                    "batch": 2,
                    "pairs_scanned": pairs,
                },
            )

        cheap = model.price(event(1e5))
        costly = model.price(event(1e7))
        assert 0 < cheap < costly
        brute = StageEvent(
            "neighbor_search", "knn", 0,
            {
                "n_queries": 2560,
                "n_candidates": 40960,
                "k": 16,
                "batch": 2,
            },
        )
        # At the measured ~3% scan fraction the grid op must price
        # below the all-pairs kernel it displaces.
        grid = model.price(event(0.03 * 2560 * 40960))
        assert grid < model.price(brute)

    def test_ball_query_grid_priced(self):
        model = self._model()
        event = StageEvent(
            "neighbor_search", "ball_query_grid", 0,
            {
                "n_queries": 2560,
                "n_candidates": 40960,
                "k": 16,
                "batch": 1,
                "pairs_scanned": 3e6,
            },
        )
        assert model.price(event) > 0

    def test_unknown_op_still_raises(self):
        with pytest.raises(ValueError):
            self._model().price(
                StageEvent("sample", "warp_drive", 0, {})
            )
