"""The batched kernel engine: identity, memory bounds, and goldens.

Three invariants guard the batched layer:

1. **Identity** — every ``*_batch`` kernel is bit-identical to looping
   its per-cloud counterpart (and, for the kernels whose per-cloud
   wrappers now *delegate* to the batch path, to the preserved
   pre-batching reference implementations in :mod:`repro.bench`).
2. **Bounded scratch** — the chunked exact kernels never materialize a
   full ``(B, Q, N)`` distance block; peak transient memory tracks the
   workspace budget (measured with ``tracemalloc``).
3. **Goldens** — full model forwards reproduce outputs captured from
   the pre-batching per-cloud implementation
   (``tests/data/model_forward_golden.npz``).
"""

import tracemalloc
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import _reference_fps, _reference_knn, _reference_window_search
from repro.core.batched import structurize_batch
from repro.core.neighbor import MortonNeighborSearch
from repro.core.pipeline import EdgePCConfig
from repro.core.sampler import MortonSampler
from repro.core.structurize import structurize
from repro.core.workspace import Workspace
from repro.neighbors import ball_query, ball_query_batch, knn, knn_batch
from repro.sampling.fps import (
    farthest_point_sample,
    farthest_point_sample_batch,
)
from repro.sampling.uniform import uniform_stride_indices

GOLDEN = Path(__file__).parent / "data" / "model_forward_golden.npz"


def make_batch(seed, batch, n, duplicates=False):
    """Random ``(B, n, 3)`` batch; optionally with exact duplicates."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(batch, n, 3))
    if duplicates:
        m = max(1, n // 3)
        pts[:, n - m :] = pts[:, :m]  # exact ties exercise stable sorts
    return pts


batch_params = {
    "seed": st.integers(0, 2**16),
    "batch": st.integers(1, 4),
    "n": st.integers(8, 64),
    "duplicates": st.booleans(),
}


class TestStructurizeIdentity:
    @given(**batch_params)
    @settings(max_examples=20, deadline=None)
    def test_matches_per_cloud(self, seed, batch, n, duplicates):
        pts = make_batch(seed, batch, n, duplicates)
        batched = structurize_batch(pts)
        for b in range(batch):
            single = structurize(pts[b])
            assert np.array_equal(batched.codes[b], single.codes)
            assert np.array_equal(
                batched.permutation[b], single.permutation
            )
            assert np.array_equal(batched.ranks[b], single.ranks)


class TestSampleIdentity:
    @given(**batch_params, frac=st.sampled_from([2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_matches_per_cloud(self, seed, batch, n, duplicates, frac):
        pts = make_batch(seed, batch, n, duplicates)
        sampler = MortonSampler()
        num_samples = max(1, n // frac)
        batched = sampler.sample_batch(pts, num_samples)
        for b in range(batch):
            single = sampler.sample(pts[b], num_samples)
            assert np.array_equal(batched.indices[b], single.indices)
            # sampled_ranks depend only on (N, n): shared across clouds.
            assert np.array_equal(
                batched.sampled_ranks, single.sampled_ranks
            )


class TestWindowSearchIdentity:
    @given(
        **batch_params,
        k=st.integers(1, 8),
        window_kind=st.sampled_from(["k", "2k", "n"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_pre_batching_reference(
        self, seed, batch, n, duplicates, k, window_kind
    ):
        pts = make_batch(seed, batch, n, duplicates)
        window = {"k": k, "2k": min(n, 2 * k), "n": n}[window_kind]
        searcher = MortonNeighborSearch(k, window)
        order = structurize_batch(pts)
        query_ranks = uniform_stride_indices(n, max(1, n // 4))
        got = searcher.search_ranks_batch(pts, order, query_ranks)
        for b in range(batch):
            if window == k:
                # Pure index mode has no reference beyond the per-cloud
                # wrapper (no distance math to diverge).
                want = searcher.search_ranks(
                    pts[b], order.cloud(b), query_ranks
                )
            else:
                want = _reference_window_search(
                    pts[b], order.cloud(b), query_ranks, k, window
                )
            assert np.array_equal(got[b], want)

    @given(**batch_params, k=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_search_batch_matches_per_cloud(
        self, seed, batch, n, duplicates, k
    ):
        pts = make_batch(seed, batch, n, duplicates)
        searcher = MortonNeighborSearch(k, min(n, 2 * k))
        got = searcher.search_batch(pts)
        want = np.stack([searcher.search(pts[b]) for b in range(batch)])
        assert np.array_equal(got, want)

    def test_per_cloud_ranks_match_shared_ranks(self):
        pts = make_batch(7, 3, 32)
        searcher = MortonNeighborSearch(4, 8)
        order = structurize_batch(pts)
        shared = uniform_stride_indices(32, 8)
        tiled = np.broadcast_to(shared, (3, 8)).copy()
        assert np.array_equal(
            searcher.search_ranks_batch(pts, order, shared),
            searcher.search_ranks_batch(pts, order, tiled),
        )


class TestFpsIdentity:
    @given(**batch_params, frac=st.sampled_from([2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_matches_pre_batching_reference(
        self, seed, batch, n, duplicates, frac
    ):
        pts = make_batch(seed, batch, n, duplicates)
        num_samples = max(1, n // frac)
        got = farthest_point_sample_batch(pts, num_samples, start_index=0)
        for b in range(batch):
            want = _reference_fps(pts[b], num_samples, 0)
            assert np.array_equal(got[b], want)

    def test_wrapper_is_batch_of_one(self):
        pts = make_batch(3, 1, 48)[0]
        got = farthest_point_sample(pts, 12, start_index=5)
        want = farthest_point_sample_batch(pts[None], 12, start_index=5)[0]
        assert np.array_equal(got, want)


class TestExactKernelIdentity:
    @given(
        seed=st.integers(0, 2**16),
        batch=st.integers(1, 3),
        n=st.integers(8, 48),
        dim=st.sampled_from([2, 3, 5]),
        k=st.integers(1, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_knn_matches_pre_batching_reference(
        self, seed, batch, n, dim, k
    ):
        rng = np.random.default_rng(seed)
        queries = rng.normal(size=(batch, n, dim))
        candidates = rng.normal(size=(batch, n + 4, dim))
        got = knn_batch(queries, candidates, k)
        for b in range(batch):
            want = _reference_knn(queries[b], candidates[b], k)
            assert np.array_equal(got[b], want)

    @given(**batch_params, k=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_ball_query_matches_per_cloud(
        self, seed, batch, n, duplicates, k
    ):
        pts = make_batch(seed, batch, n, duplicates)
        got = ball_query_batch(pts, pts, 1.5, k)
        want = np.stack(
            [ball_query(pts[b], pts[b], 1.5, k) for b in range(batch)]
        )
        assert np.array_equal(got, want)

    def test_knn_tiny_budget_still_exact(self):
        # A budget far below one distance row forces 1-row tiles.
        pts = make_batch(11, 2, 64)
        tiny = Workspace(scratch_bytes=64)
        assert np.array_equal(
            knn_batch(pts, pts, 5, tiny), knn_batch(pts, pts, 5)
        )


class TestScratchBudget:
    def test_knn_peak_memory_tracks_budget(self):
        batch, n = 2, 512
        pts = make_batch(0, batch, n)
        full_d2_bytes = batch * n * n * 8  # what (B, Q, N) would cost
        budget = 256 * 1024
        workspace = Workspace(scratch_bytes=budget)
        knn_batch(pts, pts, 16, workspace)  # warm the pool
        tracemalloc.start()
        knn_batch(pts, pts, 16, workspace)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Peak transient = argpartition/argsort temporaries over one
        # budget-sized tile (a few tile-sized int64 blocks), far below
        # the full materialization the chunking exists to avoid.
        assert peak < full_d2_bytes / 2
        assert peak < 8 * budget

    def test_workspace_reuse_across_calls(self):
        pts = make_batch(1, 2, 128)
        workspace = Workspace()
        searcher = MortonNeighborSearch(4, 8, workspace=workspace)
        searcher.search_batch(pts)
        allocated = workspace.bytes_allocated
        hits_before = workspace.hits
        searcher.search_batch(pts)
        assert workspace.bytes_allocated == allocated  # pool stable
        assert workspace.hits > hits_before  # buffers were reused


class TestModelForwardGoldens:
    """Full forwards vs outputs captured before the batched engine."""

    def _models(self):
        from repro.nn.dgcnn import DGCNNClassifier, DGCNNSegmentation
        from repro.nn.pointnet2 import (
            PointNet2Classifier,
            PointNet2Segmentation,
            SAConfig,
        )

        tiny_sa = (
            SAConfig(0.5, 4, 1.5, (8, 8)),
            SAConfig(0.5, 4, 3.0, (16, 16)),
        )
        configs = {
            "base": EdgePCConfig.baseline(),
            "edgepc": EdgePCConfig.paper_default(),
            "all": EdgePCConfig.all_layers(2),
            "insights": EdgePCConfig.with_architectural_insights(),
        }
        for tag, cfg in configs.items():
            rng = np.random.default_rng(0)
            yield f"pn2seg_{tag}", PointNet2Segmentation(
                num_classes=3, sa_configs=tiny_sa, edgepc=cfg,
                head_hidden=8, rng=rng,
            )
            rng = np.random.default_rng(0)
            yield f"pn2cls_{tag}", PointNet2Classifier(
                num_classes=5, sa_configs=tiny_sa, edgepc=cfg,
                head_hidden=8, rng=rng,
            )
            rng = np.random.default_rng(0)
            yield f"dgcnncls_{tag}", DGCNNClassifier(
                num_classes=4, k=4, ec_channels=((8,), (8,), (16,)),
                emb_channels=16, head_hidden=8, edgepc=cfg, rng=rng,
            )
            rng = np.random.default_rng(0)
            yield f"dgcnnseg_{tag}", DGCNNSegmentation(
                num_classes=4, k=4, ec_channels=((8,), (8,), (16,)),
                emb_channels=16, head_hidden=8, edgepc=cfg, rng=rng,
            )

    @pytest.mark.skipif(not GOLDEN.exists(), reason="golden npz missing")
    def test_forwards_match_pre_batching_goldens(self):
        golden = np.load(GOLDEN)
        xyz = np.random.default_rng(42).normal(size=(4, 64, 3))
        checked = 0
        for key, model in self._models():
            out = model.eval()(xyz).data
            assert np.array_equal(out, golden[key]), key
            checked += 1
        assert checked == len(golden.files) == 16
