"""Tests for the Hilbert-curve structurizer (repro.core.hilbert)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MortonNeighborSearch, structurize, structuredness
from repro.core.hilbert import hilbert_encode, hilbert_structurize
from repro.neighbors import false_neighbor_ratio, knn


class TestHilbertEncode:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_bijection_over_full_cube(self, bits):
        n = 1 << bits
        cells = np.array(
            [
                (x, y, z)
                for x in range(n)
                for y in range(n)
                for z in range(n)
            ]
        )
        distances = hilbert_encode(cells, bits)
        assert sorted(distances.tolist()) == list(range(n**3))

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_consecutive_cells_face_adjacent(self, bits):
        """The Hilbert curve's defining property: consecutive curve
        positions differ by exactly one cell along one axis (the
        Z-order curve violates this at every octant boundary)."""
        n = 1 << bits
        cells = np.array(
            [
                (x, y, z)
                for x in range(n)
                for y in range(n)
                for z in range(n)
            ]
        )
        order = np.argsort(hilbert_encode(cells, bits))
        steps = np.abs(np.diff(cells[order], axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_origin_is_zero(self):
        assert hilbert_encode(np.array([[0, 0, 0]]), 4)[0] == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_encode(np.array([[4, 0, 0]]), 2)
        with pytest.raises(ValueError):
            hilbert_encode(np.array([[-1, 0, 0]]), 2)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            hilbert_encode(np.array([[0, 0, 0]]), 0)
        with pytest.raises(ValueError):
            hilbert_encode(np.array([[0, 0, 0]]), 25)

    @given(
        seed=st.integers(0, 2**16),
        bits=st.integers(2, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_deterministic_and_in_range_property(self, seed, bits):
        gen = np.random.default_rng(seed)
        cells = gen.integers(0, 1 << bits, size=(50, 3))
        a = hilbert_encode(cells, bits)
        b = hilbert_encode(cells, bits)
        assert np.array_equal(a, b)
        assert a.min() >= 0
        assert a.max() < (1 << (3 * bits))

    def test_distinct_cells_distinct_distances(self, rng):
        cells = rng.integers(0, 1 << 8, size=(500, 3))
        unique_cells = np.unique(cells, axis=0)
        distances = hilbert_encode(unique_cells, 8)
        assert len(np.unique(distances)) == len(unique_cells)


class TestHilbertStructurize:
    def test_valid_permutation(self, medium_cloud):
        order = hilbert_structurize(medium_cloud)
        assert sorted(order.permutation.tolist()) == list(range(1024))
        assert (np.diff(order.sorted_codes) >= 0).all()

    def test_better_locality_than_morton(self, medium_cloud):
        """Hilbert has no octant jumps, so its consecutive-rank gaps
        are smaller on average — the ablation's headline."""
        morton_score = structuredness(
            structurize(medium_cloud), medium_cloud
        )
        hilbert_score = structuredness(
            hilbert_structurize(medium_cloud), medium_cloud
        )
        assert hilbert_score < morton_score

    def test_drop_in_for_window_search(self, medium_cloud):
        """The MortonOrder container is curve-agnostic: the window
        searcher works unchanged on a Hilbert order, with FNR at least
        as good."""
        k = 16
        exact = knn(medium_cloud, medium_cloud, k)
        searcher = MortonNeighborSearch(k, 2 * k)
        fnr_morton = false_neighbor_ratio(
            searcher.search(
                medium_cloud, order=structurize(medium_cloud)
            ),
            exact,
        )
        fnr_hilbert = false_neighbor_ratio(
            searcher.search(
                medium_cloud, order=hilbert_structurize(medium_cloud)
            ),
            exact,
        )
        assert fnr_hilbert <= fnr_morton + 0.02

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            hilbert_structurize(np.empty((0, 3)))


class TestCurveParameter:
    def test_structurize_curve_dispatch(self, medium_cloud):
        from repro.core import structurize as s

        hilbert = s(medium_cloud, curve="hilbert")
        direct = hilbert_structurize(medium_cloud)
        assert np.array_equal(hilbert.permutation, direct.permutation)

    def test_structurize_default_is_morton(self, medium_cloud):
        from repro.core import structurize as s

        assert np.array_equal(
            s(medium_cloud).permutation,
            s(medium_cloud, curve="morton").permutation,
        )

    def test_unknown_curve_rejected(self, medium_cloud):
        from repro.core import structurize as s

        with pytest.raises(ValueError):
            s(medium_cloud, curve="peano")
