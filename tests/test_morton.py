"""Tests for Morton encoding/decoding (repro.core.morton)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import morton


class TestSpreadCompact:
    def test_spread_zero(self):
        assert morton.spread_bits(np.array([0]))[0] == 0

    def test_spread_one(self):
        assert morton.spread_bits(np.array([1]))[0] == 1

    def test_spread_two_moves_to_bit3(self):
        assert morton.spread_bits(np.array([2]))[0] == 0b1000

    def test_spread_all_ones_pattern(self):
        # 0b111 -> bits at positions 0, 3, 6.
        assert morton.spread_bits(np.array([7]))[0] == 0b1001001

    def test_compact_inverts_spread(self):
        values = np.arange(1024)
        assert np.array_equal(
            morton.compact_bits(morton.spread_bits(values)), values
        )

    def test_spread_rejects_negative(self):
        with pytest.raises(ValueError):
            morton.spread_bits(np.array([-1]))

    def test_spread_rejects_too_wide(self):
        with pytest.raises(ValueError):
            morton.spread_bits(np.array([1 << 21]))

    def test_spread_max_value(self):
        top = (1 << 21) - 1
        spread = morton.spread_bits(np.array([top]))[0]
        assert morton.compact_bits(np.array([spread]))[0] == top


class TestEncodeDecode:
    def test_paper_example(self):
        """The worked example of Sec. 4.1: (2, 3, 4) -> 282."""
        assert morton.encode_scalar(2, 3, 4) == 282

    def test_origin(self):
        assert morton.encode_scalar(0, 0, 0) == 0

    def test_unit_axes(self):
        assert morton.encode_scalar(1, 0, 0) == 1
        assert morton.encode_scalar(0, 1, 0) == 2
        assert morton.encode_scalar(0, 0, 1) == 4

    def test_decode_scalar(self):
        assert morton.decode_scalar(282) == (2, 3, 4)

    def test_roundtrip_array(self, rng):
        cells = rng.integers(0, 1 << 21, size=(5000, 3))
        assert np.array_equal(
            morton.decode(morton.encode(cells)), cells
        )

    def test_encode_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            morton.encode(np.zeros((4, 2), dtype=np.int64))

    def test_decode_rejects_negative(self):
        with pytest.raises(ValueError):
            morton.decode(np.array([-5]))

    def test_monotone_along_axes(self):
        """Codes grow when any single coordinate grows."""
        base = morton.encode_scalar(5, 9, 2)
        assert morton.encode_scalar(6, 9, 2) > base
        assert morton.encode_scalar(5, 10, 2) > base
        assert morton.encode_scalar(5, 9, 3) > base

    def test_locality_order_of_octants(self):
        """The Z-curve visits the 8 octants of a 2x2x2 cube in
        lexicographic (z, y, x) order."""
        codes = [
            morton.encode_scalar(x, y, z)
            for z in (0, 1)
            for y in (0, 1)
            for x in (0, 1)
        ]
        assert codes == list(range(8))

    @given(
        st.integers(0, (1 << 21) - 1),
        st.integers(0, (1 << 21) - 1),
        st.integers(0, (1 << 21) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, x, y, z):
        assert morton.decode_scalar(
            morton.encode_scalar(x, y, z)
        ) == (x, y, z)

    @given(
        st.integers(0, (1 << 21) - 1),
        st.integers(0, (1 << 21) - 1),
        st.integers(0, (1 << 21) - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_code_fits_63_bits(self, x, y, z):
        assert 0 <= morton.encode_scalar(x, y, z) < (1 << 63)


class TestBitsPerAxis:
    def test_default_width(self):
        assert morton.bits_per_axis(morton.DEFAULT_CODE_BITS) == 10

    @pytest.mark.parametrize(
        "code_bits,expected", [(3, 1), (12, 4), (32, 10), (63, 21)]
    )
    def test_values(self, code_bits, expected):
        assert morton.bits_per_axis(code_bits) == expected

    def test_rejects_too_narrow(self):
        with pytest.raises(ValueError):
            morton.bits_per_axis(2)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            morton.bits_per_axis(66)


class TestCodeMemory:
    def test_paper_formula(self):
        """Sec. 5.1.3: N points x a bits -> N a / 8 bytes."""
        assert morton.code_memory_bytes(8192, 32) == 8192 * 4

    def test_zero_points(self):
        assert morton.code_memory_bytes(0, 32) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            morton.code_memory_bytes(-1, 32)
