"""Unit tests for the sanitization boundary
(repro.robustness.validate) and the count-bearing finite checks it
installed at the geometry level."""

import numpy as np
import pytest

from repro.geometry import BoundingBox
from repro.robustness import (
    CloudValidationError,
    ValidationPolicy,
    sanitize_cloud,
)
from repro.robustness.validate import (
    count_non_finite,
    ensure_finite,
    sanitize_batch,
)


def _salted(rng, n=32, bad=4):
    cloud = rng.random((n, 3))
    cloud[:bad, 0] = np.nan
    return cloud


class TestPolicy:
    def test_constructors(self):
        assert ValidationPolicy.reject().on_invalid == "reject"
        assert ValidationPolicy.repair().on_invalid == "repair"
        assert ValidationPolicy.clamp().on_invalid == "clamp"

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            ValidationPolicy(on_invalid="shrug")

    def test_rejects_bad_min_points(self):
        with pytest.raises(ValueError):
            ValidationPolicy(min_points=0)

    def test_rejects_bad_unique_fraction(self):
        with pytest.raises(ValueError):
            ValidationPolicy(min_unique_fraction=1.5)


class TestSanitizeCloud:
    def test_clean_cloud_untouched(self, rng):
        cloud = rng.random((16, 3))
        out, report = sanitize_cloud(cloud)
        assert report.ok
        assert report.summary().startswith("clean cloud")
        np.testing.assert_array_equal(out, cloud)

    def test_reject_raises_with_report(self, rng):
        with pytest.raises(CloudValidationError) as info:
            sanitize_cloud(_salted(rng))
        assert "4 of 32" in str(info.value)
        report = info.value.report
        assert report.issues[0].kind == "non_finite"
        assert report.issues[0].count == 4

    def test_repair_drops_bad_rows(self, rng):
        out, report = sanitize_cloud(
            _salted(rng), ValidationPolicy.repair()
        )
        assert out.shape == (28, 3)
        assert np.isfinite(out).all()
        assert report.dropped == 4

    def test_clamp_pulls_into_derived_box(self, rng):
        cloud = rng.random((16, 3))
        cloud[0] = [np.nan, np.inf, -np.inf]
        out, report = sanitize_cloud(cloud, ValidationPolicy.clamp())
        assert out.shape == (16, 3)
        assert np.isfinite(out).all()
        box = BoundingBox.of_points(cloud[1:])
        assert box.contains(out).all()
        # NaN -> box center, +/-Inf -> the matching box face.
        assert out[0, 0] == pytest.approx(box.center[0])
        assert out[0, 1] == pytest.approx(box.maximum[1])
        assert out[0, 2] == pytest.approx(box.minimum[2])

    def test_clamp_all_non_finite_rejects(self):
        cloud = np.full((4, 3), np.nan)
        with pytest.raises(CloudValidationError):
            sanitize_cloud(cloud, ValidationPolicy.clamp())

    def test_out_of_box_repair(self, rng):
        box = BoundingBox(np.zeros(3), np.ones(3))
        cloud = rng.random((16, 3))
        cloud[:3] += 10.0
        out, report = sanitize_cloud(
            cloud, ValidationPolicy.repair(bounding_box=box)
        )
        assert out.shape == (13, 3)
        assert box.contains(out).all()
        assert report.issues[0].kind == "out_of_box"

    def test_out_of_box_clamp(self, rng):
        box = BoundingBox(np.zeros(3), np.ones(3))
        cloud = rng.random((16, 3))
        cloud[:3] += 10.0
        out, _ = sanitize_cloud(
            cloud, ValidationPolicy.clamp(bounding_box=box)
        )
        assert out.shape == (16, 3)
        assert box.contains(out).all()

    def test_undersized_rejects_under_every_policy(self, rng):
        cloud = _salted(rng, n=4, bad=4)
        for policy in (
            ValidationPolicy.reject(min_points=2),
            ValidationPolicy.repair(min_points=2),
        ):
            with pytest.raises(CloudValidationError) as info:
                sanitize_cloud(cloud, policy)
            assert info.value.report.n_output in (0, 4)

    def test_duplicate_collapse_reject(self):
        cloud = np.ones((8, 3))
        with pytest.raises(CloudValidationError) as info:
            sanitize_cloud(cloud)
        assert "duplicate-collapsed" in str(info.value)

    def test_duplicate_collapse_flagged_under_repair(self):
        out, report = sanitize_cloud(
            np.ones((8, 3)), ValidationPolicy.repair()
        )
        assert out.shape == (8, 3)
        assert report.issues[0].action == "flagged"

    def test_unique_fraction_floor(self, rng):
        cloud = np.repeat(rng.random((2, 3)), 8, axis=0)
        with pytest.raises(CloudValidationError):
            sanitize_cloud(
                cloud, ValidationPolicy(min_unique_fraction=0.5)
            )
        # The same cloud passes without the floor (2 distinct points).
        out, _ = sanitize_cloud(cloud)
        assert out.shape == (16, 3)

    def test_extra_channels_sliced_under_repair(self, rng):
        cloud = rng.random((8, 5))  # xyz + intensity + ring
        out, report = sanitize_cloud(cloud, ValidationPolicy.repair())
        assert out.shape == (8, 3)
        assert report.issues[0].kind == "extra_channels"

    def test_extra_channels_rejected_under_reject(self, rng):
        with pytest.raises(CloudValidationError):
            sanitize_cloud(rng.random((8, 5)))

    def test_bad_shape_always_rejects(self, rng):
        with pytest.raises(CloudValidationError):
            sanitize_cloud(
                rng.random((8, 2)), ValidationPolicy.repair()
            )

    def test_non_numeric_always_rejects(self):
        with pytest.raises(CloudValidationError):
            sanitize_cloud(
                np.array([["a", "b", "c"]], dtype=object),
                ValidationPolicy.repair(),
            )


class TestSanitizeBatch:
    def test_repair_pads_back_to_rectangular(self, rng):
        xyz = rng.random((2, 16, 3))
        xyz[1, :4, 2] = np.inf
        out, reports = sanitize_batch(xyz, ValidationPolicy.repair())
        assert out.shape == (2, 16, 3)
        assert np.isfinite(out).all()
        assert reports[0].ok
        assert reports[1].n_output == 16
        kinds = [issue.kind for issue in reports[1].issues]
        assert kinds == ["non_finite", "undersized"]

    def test_rejects_non_batch_shape(self, rng):
        with pytest.raises(CloudValidationError):
            sanitize_batch(rng.random((16, 3)))


class TestFiniteHelpers:
    def test_count_non_finite(self):
        cloud = np.zeros((5, 3))
        cloud[1, 0] = np.nan
        cloud[1, 1] = np.inf  # same point: counted once
        cloud[3, 2] = -np.inf
        assert count_non_finite(cloud) == 2
        assert count_non_finite(np.empty((0, 3))) == 0

    def test_ensure_finite_message(self):
        cloud = np.zeros((5, 3))
        cloud[2, 1] = np.nan
        with pytest.raises(ValueError, match="1 of 5"):
            ensure_finite(cloud, "sample")


class TestCountBearingGeometryErrors:
    def test_structurize_counts_bad_points(self):
        from repro.core import structurize

        cloud = np.zeros((6, 3))
        cloud[0, 0] = np.nan
        cloud[4, 2] = np.inf
        with pytest.raises(ValueError, match="2 of 6"):
            structurize(cloud)

    def test_bbox_of_points_counts_bad_points(self):
        cloud = np.zeros((4, 3))
        cloud[3, 1] = np.nan
        with pytest.raises(ValueError, match="1 of 4"):
            BoundingBox.of_points(cloud)

    def test_bbox_rejects_non_finite_corners(self):
        with pytest.raises(ValueError):
            BoundingBox(np.zeros(3), np.array([1.0, np.inf, 1.0]))

    def test_sampler_precomputed_order_checks_finite(self, rng):
        from repro.core import MortonSampler, structurize

        cloud = rng.random((32, 3))
        order = structurize(cloud)
        cloud[0, 0] = np.nan  # corrupted after structurization
        with pytest.raises(ValueError, match="1 of 32"):
            MortonSampler().sample(cloud, 8, order=order)

    def test_search_precomputed_order_checks_finite(self, rng):
        from repro.core import MortonNeighborSearch, structurize

        cloud = rng.random((32, 3))
        order = structurize(cloud)
        cloud[5, 2] = np.inf
        with pytest.raises(ValueError, match="1 of 32"):
            MortonNeighborSearch(4).search(cloud, order=order)


class TestDatasetBoundary:
    def test_generator_fault_fails_loudly(self):
        from repro.datasets.base import SyntheticDataset
        from repro.geometry.points import PointCloud

        class StuckSensorDataset(SyntheticDataset):
            def _generate(self, index, rng):
                # Finite but duplicate-collapsed: slips past the
                # PointCloud constructor, caught by the sanitizer.
                return PointCloud(
                    np.ones((self.points_per_cloud, 3))
                )

        data = StuckSensorDataset(num_clouds=2, points_per_cloud=8)
        with pytest.raises(RuntimeError, match="index 0"):
            data[0]

    def test_clean_generator_unaffected(self):
        from repro.datasets import ModelNetLike

        data = ModelNetLike(num_clouds=2, points_per_cloud=32)
        assert len(data[0]) == 32
