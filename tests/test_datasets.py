"""Tests for the synthetic datasets (repro.datasets)."""

import numpy as np
import pytest

from repro.datasets import (
    Batch,
    ModelNetLike,
    S3DISLike,
    ScanNetLike,
    ShapeNetPartLike,
    bunny_like,
    make_batches,
    train_test_split,
)
from repro.datasets.indoor import NUM_SEMANTIC_CLASSES
from repro.datasets.modelnet import MAX_CLASSES, class_recipe
from repro.datasets.shapenet import NUM_CATEGORIES, NUM_PARTS


class TestModelNetLike:
    def test_sizes(self):
        ds = ModelNetLike(num_clouds=8, points_per_cloud=128)
        assert len(ds) == 8
        assert len(ds[0]) == 128

    def test_labels_balanced(self):
        ds = ModelNetLike(
            num_clouds=12, points_per_cloud=64, num_classes=4
        )
        labels = [int(ds[i].labels[0]) for i in range(12)]
        assert labels == [i % 4 for i in range(12)]

    def test_label_constant_per_cloud(self):
        ds = ModelNetLike(num_clouds=4, points_per_cloud=64)
        cloud = ds[2]
        assert (cloud.labels == cloud.labels[0]).all()

    def test_normalized_to_unit_sphere(self):
        ds = ModelNetLike(num_clouds=2, points_per_cloud=256)
        norms = np.linalg.norm(ds[0].xyz, axis=1)
        assert norms.max() == pytest.approx(1.0)

    def test_deterministic(self):
        a = ModelNetLike(num_clouds=4, points_per_cloud=64, seed=7)
        b = ModelNetLike(num_clouds=4, points_per_cloud=64, seed=7)
        assert np.array_equal(a[3].xyz, b[3].xyz)

    def test_seed_changes_clouds(self):
        a = ModelNetLike(num_clouds=4, points_per_cloud=64, seed=1)
        b = ModelNetLike(num_clouds=4, points_per_cloud=64, seed=2)
        assert not np.array_equal(a[0].xyz, b[0].xyz)

    def test_classes_differ_geometrically(self):
        """Two classes of the same size must not be near-identical
        point sets (chamfer far from zero)."""
        from repro.sampling import chamfer_distance

        ds = ModelNetLike(
            num_clouds=8, points_per_cloud=256, num_classes=4,
            jitter_sigma=0.0,
        )
        d = chamfer_distance(ds[0].xyz, ds[1].xyz)
        assert d > 0.05

    def test_max_classes_supported(self):
        ds = ModelNetLike(
            num_clouds=MAX_CLASSES,
            points_per_cloud=32,
            num_classes=MAX_CLASSES,
        )
        assert len(ds[MAX_CLASSES - 1]) == 32

    def test_class_recipe_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            class_recipe(MAX_CLASSES)

    def test_rejects_bad_class_count(self):
        with pytest.raises(ValueError):
            ModelNetLike(num_classes=1)

    def test_index_out_of_range(self):
        ds = ModelNetLike(num_clouds=2, points_per_cloud=32)
        with pytest.raises(IndexError):
            ds[2]


class TestShapeNetPartLike:
    def test_sizes_and_parts(self):
        ds = ShapeNetPartLike(num_clouds=4, points_per_cloud=512)
        cloud = ds[0]
        assert len(cloud) == 512
        assert cloud.labels.min() >= 0
        assert cloud.labels.max() < NUM_PARTS

    def test_every_cloud_multi_part(self):
        ds = ShapeNetPartLike(num_clouds=4, points_per_cloud=512)
        for i in range(4):
            assert len(np.unique(ds[i].labels)) >= 2

    def test_categories_cycle(self):
        ds = ShapeNetPartLike(num_clouds=8, points_per_cloud=128)
        assert ds.category_of(0) == 0
        assert ds.category_of(NUM_CATEGORIES) == 0
        assert ds.category_of(1) == 1

    def test_parts_spatially_separated(self):
        """Part labels must correlate with geometry: the mean position
        of different parts differs."""
        ds = ShapeNetPartLike(num_clouds=1, points_per_cloud=1024)
        cloud = ds[0]
        centers = [
            cloud.xyz[cloud.labels == p].mean(axis=0)
            for p in np.unique(cloud.labels)
        ]
        gaps = [
            np.linalg.norm(a - b)
            for i, a in enumerate(centers)
            for b in centers[i + 1 :]
        ]
        assert min(gaps) > 0.05

    def test_deterministic(self):
        a = ShapeNetPartLike(num_clouds=2, points_per_cloud=128, seed=3)
        b = ShapeNetPartLike(num_clouds=2, points_per_cloud=128, seed=3)
        assert np.array_equal(a[1].labels, b[1].labels)


class TestIndoorDatasets:
    @pytest.mark.parametrize("cls", [S3DISLike, ScanNetLike])
    def test_sizes_and_labels(self, cls):
        ds = cls(num_clouds=2, points_per_cloud=1024)
        cloud = ds[0]
        assert len(cloud) == 1024
        assert cloud.labels.max() < NUM_SEMANTIC_CLASSES

    @pytest.mark.parametrize("cls", [S3DISLike, ScanNetLike])
    def test_all_major_classes_present(self, cls):
        ds = cls(num_clouds=1, points_per_cloud=2048)
        present = set(np.unique(ds[0].labels).tolist())
        # Floor, wall and at least one furniture class must survive
        # occlusion/resampling.
        assert 0 in present
        assert 2 in present
        assert present & {3, 4, 5}

    def test_floor_is_low_ceiling_is_high(self):
        ds = S3DISLike(num_clouds=1, points_per_cloud=2048)
        cloud = ds[0]
        floor_z = cloud.xyz[cloud.labels == 0][:, 2].mean()
        ceiling_z = cloud.xyz[cloud.labels == 1][:, 2].mean()
        assert floor_z < ceiling_z

    def test_scannet_noisier_than_s3dis(self):
        """The ScanNet-like variant adds sensor noise: its points lie
        off the clean surfaces.  Verify via the z-spread of the floor
        (exactly planar in S3DIS-like rooms)."""
        clean = S3DISLike(num_clouds=1, points_per_cloud=2048)[0]
        noisy = ScanNetLike(num_clouds=1, points_per_cloud=2048)[0]
        clean_spread = clean.xyz[clean.labels == 0][:, 2].std()
        noisy_spread = noisy.xyz[noisy.labels == 0][:, 2].std()
        assert noisy_spread > clean_spread

    def test_scannet_deterministic(self):
        a = ScanNetLike(num_clouds=2, points_per_cloud=512, seed=5)
        b = ScanNetLike(num_clouds=2, points_per_cloud=512, seed=5)
        assert np.array_equal(a[0].xyz, b[0].xyz)


class TestBunny:
    def test_default_point_count(self):
        from repro.datasets import BUNNY_POINT_COUNT

        cloud = bunny_like()
        assert len(cloud) == BUNNY_POINT_COUNT == 40256

    def test_custom_count(self):
        assert len(bunny_like(5000)) == 5000

    def test_irregular_density(self):
        """The bunny must be *irregularly* sampled — that's what makes
        raw uniform sampling fail in Fig. 5."""
        from repro.sampling import density_uniformity, uniform_sample

        cloud = bunny_like(8000)
        idx = uniform_sample(cloud.xyz, 128)
        assert density_uniformity(cloud.xyz, idx) > 0.5

    def test_deterministic(self):
        assert np.array_equal(
            bunny_like(1000, seed=2).xyz, bunny_like(1000, seed=2).xyz
        )

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            bunny_like(4)


class TestBatching:
    def test_classification_batches(self):
        ds = ModelNetLike(num_clouds=8, points_per_cloud=64)
        batches = make_batches(ds, 4)
        assert len(batches) == 2
        assert batches[0].xyz.shape == (4, 64, 3)
        assert batches[0].labels.shape == (4,)

    def test_segmentation_batches(self):
        ds = S3DISLike(num_clouds=4, points_per_cloud=256)
        batches = make_batches(ds, 2, per_point_labels=True)
        assert batches[0].labels.shape == (2, 256)

    def test_drop_last(self):
        ds = ModelNetLike(num_clouds=7, points_per_cloud=32)
        assert len(make_batches(ds, 4)) == 1
        assert len(make_batches(ds, 4, drop_last=False)) == 2

    def test_explicit_indices(self):
        ds = ModelNetLike(num_clouds=8, points_per_cloud=32)
        batches = make_batches(ds, 2, indices=[1, 3, 5, 7])
        assert batches[0].labels.tolist() == [1, 3]

    def test_batch_properties(self):
        batch = Batch(
            xyz=np.zeros((3, 16, 3)), labels=np.zeros(3, dtype=int)
        )
        assert batch.batch_size == 3
        assert batch.points_per_cloud == 16

    def test_too_small_raises(self):
        ds = ModelNetLike(num_clouds=2, points_per_cloud=32)
        with pytest.raises(ValueError):
            make_batches(ds, 4)

    def test_split_disjoint_and_complete(self):
        ds = ModelNetLike(num_clouds=20, points_per_cloud=32)
        train, test = train_test_split(ds, 0.25)
        assert set(train) | set(test) == set(range(20))
        assert not set(train) & set(test)
        assert len(test) == 5

    def test_split_rejects_bad_fraction(self):
        ds = ModelNetLike(num_clouds=4, points_per_cloud=32)
        with pytest.raises(ValueError):
            train_test_split(ds, 0.0)
