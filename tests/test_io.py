"""Tests for point-cloud file I/O (repro.geometry.io)."""

import numpy as np
import pytest

from repro.geometry import io as pc_io
from repro.geometry.points import PointCloud


@pytest.fixture
def labelled_cloud(rng):
    return PointCloud(
        rng.normal(size=(50, 3)), labels=rng.integers(0, 5, 50)
    )


@pytest.fixture
def plain_cloud(rng):
    return PointCloud(rng.normal(size=(30, 3)))


class TestXYZ:
    def test_roundtrip_plain(self, plain_cloud, tmp_path):
        path = str(tmp_path / "cloud.xyz")
        pc_io.save_xyz(plain_cloud, path)
        loaded = pc_io.load_xyz(path)
        assert np.allclose(loaded.xyz, plain_cloud.xyz)
        assert loaded.labels is None

    def test_roundtrip_labelled(self, labelled_cloud, tmp_path):
        path = str(tmp_path / "cloud.xyz")
        pc_io.save_xyz(labelled_cloud, path)
        loaded = pc_io.load_xyz(path)
        assert np.allclose(loaded.xyz, labelled_cloud.xyz)
        assert np.array_equal(loaded.labels, labelled_cloud.labels)

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "c.xyz"
        path.write_text("# header\n\n1 2 3\n4 5 6\n")
        loaded = pc_io.load_xyz(str(path))
        assert len(loaded) == 2

    def test_rejects_bad_columns(self, tmp_path):
        path = tmp_path / "c.xyz"
        path.write_text("1 2\n")
        with pytest.raises(ValueError):
            pc_io.load_xyz(str(path))

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "c.xyz"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            pc_io.load_xyz(str(path))

    def test_rejects_inconsistent_labels(self, tmp_path):
        path = tmp_path / "c.xyz"
        path.write_text("1 2 3 7\n4 5 6\n")
        with pytest.raises(ValueError):
            pc_io.load_xyz(str(path))


class TestPLY:
    def test_roundtrip_plain(self, plain_cloud, tmp_path):
        path = str(tmp_path / "cloud.ply")
        pc_io.save_ply(plain_cloud, path)
        loaded = pc_io.load_ply(path)
        assert np.allclose(loaded.xyz, plain_cloud.xyz)
        assert loaded.labels is None

    def test_roundtrip_labelled(self, labelled_cloud, tmp_path):
        path = str(tmp_path / "cloud.ply")
        pc_io.save_ply(labelled_cloud, path)
        loaded = pc_io.load_ply(path)
        assert np.allclose(loaded.xyz, labelled_cloud.xyz)
        assert np.array_equal(loaded.labels, labelled_cloud.labels)

    def test_reads_reordered_properties(self, tmp_path):
        path = tmp_path / "c.ply"
        path.write_text(
            "ply\nformat ascii 1.0\nelement vertex 1\n"
            "property float z\nproperty float y\nproperty float x\n"
            "end_header\n3.0 2.0 1.0\n"
        )
        loaded = pc_io.load_ply(str(path))
        assert loaded.xyz[0].tolist() == [1.0, 2.0, 3.0]

    def test_rejects_binary(self, tmp_path):
        path = tmp_path / "c.ply"
        path.write_text(
            "ply\nformat binary_little_endian 1.0\n"
            "element vertex 0\nend_header\n"
        )
        with pytest.raises(ValueError):
            pc_io.load_ply(str(path))

    def test_rejects_not_ply(self, tmp_path):
        path = tmp_path / "c.ply"
        path.write_text("solid nonsense\n")
        with pytest.raises(ValueError):
            pc_io.load_ply(str(path))

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "c.ply"
        path.write_text(
            "ply\nformat ascii 1.0\nelement vertex 3\n"
            "property float x\nproperty float y\nproperty float z\n"
            "end_header\n1 2 3\n"
        )
        with pytest.raises(ValueError):
            pc_io.load_ply(str(path))

    def test_rejects_list_properties(self, tmp_path):
        path = tmp_path / "c.ply"
        path.write_text(
            "ply\nformat ascii 1.0\nelement vertex 1\n"
            "property list uchar int vertex_indices\n"
            "end_header\n"
        )
        with pytest.raises(ValueError):
            pc_io.load_ply(str(path))


class TestDispatch:
    def test_save_load_by_extension(self, plain_cloud, tmp_path):
        for ext in (".ply", ".xyz", ".txt"):
            path = str(tmp_path / f"cloud{ext}")
            pc_io.save(plain_cloud, path)
            assert len(pc_io.load(path)) == len(plain_cloud)

    def test_rejects_unknown_extension(self, plain_cloud, tmp_path):
        with pytest.raises(ValueError):
            pc_io.save(plain_cloud, str(tmp_path / "cloud.obj"))
        with pytest.raises(ValueError):
            pc_io.load(str(tmp_path / "cloud.pcd"))
